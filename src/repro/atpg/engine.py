"""The structural-untestability engine — this package's stand-in for TetraMax.

The engine classifies a fault list against a (possibly manipulated) netlist
in up to three phases, selected by :class:`AtpgEffort`:

1. **TIE** — tied-value analysis (:class:`repro.atpg.tie_analysis.TieAnalysis`):
   linear-time, sound identification of UT/UB/UO faults.  This is the phase
   the paper's flow relies on ("untestable due to tied value - UT").
2. **RANDOM** — a burst of bit-parallel random patterns marks easily
   detectable faults DT, shrinking the population the expensive phase sees.
3. **FULL** — PODEM on every remaining unclassified fault: proves redundancy
   (UU), finds a test (DT), or gives up (AU) at the backtrack limit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.atpg.implication import ImplicationEngine
from repro.atpg.podem import PodemStatus
from repro.atpg.random_patterns import random_pattern_detection
from repro.atpg.tie_analysis import TieAnalysis
from repro.faults.categories import FaultClass
from repro.faults.models import Fault
from repro.faults.faultlist import FaultList
from repro.netlist.module import Netlist


class AtpgEffort(str, Enum):
    """How much work the engine spends per fault."""

    TIE = "tie"
    RANDOM = "random"
    FULL = "full"


def resolve_effort(effort: object,
                   default: Optional[AtpgEffort] = None) -> Optional[AtpgEffort]:
    """Coerce an effort spec to an enum member.

    .. deprecated::
        The implementation moved to :func:`repro.api.options.resolve_effort`
        (the parser is consumed by the API layer, not by the engine); this
        delegating re-export keeps every ``from repro.atpg.engine import
        resolve_effort`` caller working.  The import is deferred because
        ``repro.api`` initializes through this module.
    """
    from repro.api.options import resolve_effort as _resolve_effort

    return _resolve_effort(effort, default)


@dataclass
class UntestabilityReport:
    """Classification outcome for one engine run."""

    effort: AtpgEffort
    classifications: Dict[Fault, FaultClass] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    phase_runtimes: Dict[str, float] = field(default_factory=dict)
    #: Search statistics: faults proven statically (total and per proof
    #: category), PODEM invocations, backtracks, learned-implication skips.
    stats: Dict[str, int] = field(default_factory=dict)
    #: Compacted test patterns (FULL effort only): each entry carries the
    #: cube(s), the faults it is credited with and its detection count, in
    #: steepest-coverage-first order.  See
    #: :func:`repro.atpg.portfolio.compact_patterns`.
    patterns: List[Dict[str, object]] = field(default_factory=list)
    #: The dynamic-compaction trace (generated / kept / merged / dropped
    #: counts plus capped per-pattern events).
    compaction: Dict[str, object] = field(default_factory=dict)

    def with_class(self, *classes: FaultClass) -> List[Fault]:
        wanted = set(classes)
        return [f for f, c in self.classifications.items() if c in wanted]

    @property
    def untestable(self) -> List[Fault]:
        return [f for f, c in self.classifications.items() if c.is_untestable]

    @property
    def detected(self) -> List[Fault]:
        return [f for f, c in self.classifications.items() if c.is_detected]

    def counts(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for cls in self.classifications.values():
            result[cls.value] = result.get(cls.value, 0) + 1
        return result


def run_detection_phases(netlist: Netlist, faults: List[Fault],
                         effort: AtpgEffort, *,
                         random_patterns: int = 256,
                         backtrack_limit: int = 200,
                         seed: int = 2013,
                         static_prune: bool = True,
                         static_learning: bool = True,
                         kernel: Optional[str] = None,
                         atpg_backend: Optional[str] = None,
                         atpg_seed: Optional[int] = None):
    """Phases 2-3 of the engine: random-pattern detection, then ATPG.

    Operates on faults the tied-value analysis left unclassified.  Every
    verdict is per-fault (the random phase replays one seeded pattern
    burst, the ATPG backend searches per fault), so the result is
    independent of how the fault list is batched — which is what lets the
    sharded classifier (:func:`repro.simulation.sharded.sharded_classify`)
    run the tie fixpoint once and farm only these phases out to workers.

    At FULL effort the static-analysis layer (:mod:`repro.analysis`) joins
    in: with ``static_prune`` the prover classifies faults UU *before* any
    search; with ``static_learning`` the remaining searches consult the
    learned implications and SCOAP guidance.  Both default on; turning both
    off reproduces the plain search bit-for-bit (the oracle path).

    ``atpg_backend`` selects the portfolio strategy for the search phase
    (:mod:`repro.atpg.portfolio`; ``None`` is the classic ``podem``) and
    ``atpg_seed`` overrides the seed its randomized members derive their
    per-fault streams from (``None`` reuses ``seed``).

    Returns ``(classifications, phase_runtimes, stats, patterns)`` where
    ``patterns`` is the canonical-order list of ``(fault, pattern,
    init_pattern)`` triples for the faults the search detected.
    """
    classifications: Dict[Fault, FaultClass] = {}
    phase_runtimes: Dict[str, float] = {}
    stats: Dict[str, int] = {}
    patterns: List[tuple] = []
    remaining = list(faults)

    if effort in (AtpgEffort.RANDOM, AtpgEffort.FULL) and remaining:
        phase_start = time.perf_counter()
        detected = random_pattern_detection(
            netlist, remaining, n_patterns=random_patterns, seed=seed,
            kernel=kernel)
        for fault in detected:
            classifications[fault] = FaultClass.DT
        remaining = [f for f in remaining if f not in detected]
        phase_runtimes["random"] = time.perf_counter() - phase_start

    if effort is AtpgEffort.FULL and remaining:
        static = None
        if static_prune or static_learning:
            from repro.analysis import get_static_analysis

            phase_start = time.perf_counter()
            static = get_static_analysis(netlist)
            phase_runtimes["static_build"] = time.perf_counter() - phase_start

        if static is not None and static_prune:
            phase_start = time.perf_counter()
            unproven: List[Fault] = []
            for fault in remaining:
                proof = static.prove(fault)
                if proof is None:
                    unproven.append(fault)
                    continue
                classifications[fault] = FaultClass.UU
                stats["static_proved"] = stats.get("static_proved", 0) + 1
                key = f"static_proved_{proof.category}"
                stats[key] = stats.get(key, 0) + 1
            remaining = unproven
            phase_runtimes["static_prune"] = time.perf_counter() - phase_start

        phase_start = time.perf_counter()
        from repro.atpg.portfolio import resolve_atpg_backend

        backend = resolve_atpg_backend(atpg_backend)
        run = backend.start(
            netlist, backtrack_limit=backtrack_limit,
            static=static if static_learning else None,
            seed=seed if atpg_seed is None else atpg_seed)
        backtracks = 0
        for fault in remaining:
            result = run.generate(fault)
            backtracks += result.backtracks
            if result.status is PodemStatus.DETECTED:
                classifications[fault] = FaultClass.DT
                patterns.append((fault, result.pattern, result.init_pattern))
            elif result.status is PodemStatus.UNTESTABLE:
                classifications[fault] = FaultClass.UU
            else:
                classifications[fault] = FaultClass.AU
        phase_runtimes["podem"] = time.perf_counter() - phase_start
        stats["podem_calls"] = stats.get("podem_calls", 0) + len(remaining)
        stats["podem_backtracks"] = (stats.get("podem_backtracks", 0)
                                     + backtracks)
        if static is not None and static_learning:
            stats["learned_skips"] = (stats.get("learned_skips", 0)
                                      + run.learned_skips)

    return classifications, phase_runtimes, stats, patterns


def run_escalation_phase(netlist: Netlist, faults: List[Fault], *,
                         backtrack_limit: int = 200,
                         seed: int = 2013,
                         static_learning: bool = True,
                         atpg_backend: Optional[str] = None,
                         atpg_seed: Optional[int] = None):
    """Re-attack aborted (AU) faults with the backend's escalation tier.

    A no-op for backends without one (``escalates`` false).  Like the
    primary phases every verdict is per-fault, so the serial engine and the
    sharded classifier — which runs this over the *merged* abort frontier
    in a second fan-out round — produce identical improvements.

    Returns ``(improvements, patterns, phase_runtimes, stats)`` where
    ``improvements`` maps escalated faults to their new class (DT or UU)
    and ``patterns`` carries the ``(fault, pattern, init_pattern)`` triples
    of newly detected faults.
    """
    from repro.atpg.portfolio import resolve_atpg_backend

    improvements: Dict[Fault, FaultClass] = {}
    patterns: List[tuple] = []
    phase_runtimes: Dict[str, float] = {}
    stats: Dict[str, int] = {}
    backend = resolve_atpg_backend(atpg_backend)
    if not backend.escalates or not faults:
        return improvements, patterns, phase_runtimes, stats

    phase_start = time.perf_counter()
    static = None
    if static_learning:
        from repro.analysis import get_static_analysis

        static = get_static_analysis(netlist)
    run = backend.start(netlist, backtrack_limit=backtrack_limit,
                        static=static,
                        seed=seed if atpg_seed is None else atpg_seed)
    for fault in faults:
        result = run.escalate(fault)
        if result is None:
            continue
        if result.status is PodemStatus.DETECTED:
            improvements[fault] = FaultClass.DT
            patterns.append((fault, result.pattern, result.init_pattern))
            stats["escalation_detected"] = (
                stats.get("escalation_detected", 0) + 1)
        elif result.status is PodemStatus.UNTESTABLE:
            improvements[fault] = FaultClass.UU
            stats["escalation_proved_uu"] = (
                stats.get("escalation_proved_uu", 0) + 1)
    stats["escalated"] = len(faults)
    phase_runtimes["escalation"] = time.perf_counter() - phase_start
    return improvements, patterns, phase_runtimes, stats


class StructuralUntestabilityEngine:
    """Classifies stuck-at faults of a netlist (TetraMax-style).

    ``jobs`` > 1 shards the fault population across worker processes or
    threads (:func:`repro.simulation.sharded.sharded_classify`): each shard
    runs the same phase stack on its cone-aware slice and the merged report
    carries exactly the serial classifications.  ``backend``/``shards``
    tune the sharded run; with the default ``jobs=1`` the engine is the
    serial reference.
    """

    def __init__(self, netlist: Netlist,
                 effort: AtpgEffort = AtpgEffort.TIE,
                 random_patterns: int = 256,
                 backtrack_limit: int = 200,
                 seed: int = 2013,
                 jobs: int = 1,
                 backend: Optional[str] = None,
                 shards: Optional[int] = None,
                 static_prune: bool = True,
                 static_learning: bool = True,
                 kernel: Optional[str] = None,
                 atpg_backend: Optional[str] = None,
                 atpg_seed: Optional[int] = None,
                 pool=None,
                 chunk: Optional[int] = None) -> None:
        self.netlist = netlist
        self.effort = effort
        self.random_patterns = random_patterns
        self.backtrack_limit = backtrack_limit
        self.seed = seed
        self.jobs = max(1, jobs if jobs is not None else 1)
        self.backend = backend
        self.shards = shards
        self.static_prune = static_prune
        self.static_learning = static_learning
        self.kernel = kernel
        self.atpg_backend = atpg_backend
        self.atpg_seed = atpg_seed
        self.pool = pool
        self.chunk = chunk
        self.implication = ImplicationEngine(netlist)

    def classify(self, faults: Iterable[Fault]) -> UntestabilityReport:
        """Classify the given faults; unclassified faults are omitted from the
        report at TIE effort and reported NC/AU/DT at higher efforts."""
        fault_list = list(faults)
        if (self.jobs > 1 or self.pool is not None) and len(fault_list) > 1:
            from repro.simulation.sharded import sharded_classify

            return sharded_classify(
                self.netlist, fault_list, effort=self.effort,
                jobs=self.jobs, backend=self.backend, shards=self.shards,
                random_patterns=self.random_patterns,
                backtrack_limit=self.backtrack_limit, seed=self.seed,
                static_prune=self.static_prune,
                static_learning=self.static_learning,
                kernel=self.kernel,
                atpg_backend=self.atpg_backend, atpg_seed=self.atpg_seed,
                pool=self.pool, chunk=self.chunk)
        report = UntestabilityReport(effort=self.effort)
        start = time.perf_counter()

        # Phase 1: tied-value analysis.
        phase_start = time.perf_counter()
        tie = TieAnalysis(self.netlist, self.implication)
        tie_result = tie.run(fault_list)
        report.classifications.update(tie_result.classifications)
        report.phase_runtimes["tie"] = time.perf_counter() - phase_start

        remaining = [f for f in fault_list if f not in report.classifications]
        classifications, phase_runtimes, stats, patterns = run_detection_phases(
            self.netlist, remaining, self.effort,
            random_patterns=self.random_patterns,
            backtrack_limit=self.backtrack_limit, seed=self.seed,
            static_prune=self.static_prune,
            static_learning=self.static_learning,
            kernel=self.kernel,
            atpg_backend=self.atpg_backend, atpg_seed=self.atpg_seed)
        report.classifications.update(classifications)
        report.phase_runtimes.update(phase_runtimes)
        report.stats.update(stats)

        if self.effort is AtpgEffort.FULL:
            frontier = [f for f in remaining
                        if report.classifications.get(f) is FaultClass.AU]
            improvements, esc_patterns, esc_runtimes, esc_stats = \
                run_escalation_phase(
                    self.netlist, frontier,
                    backtrack_limit=self.backtrack_limit, seed=self.seed,
                    static_learning=self.static_learning,
                    atpg_backend=self.atpg_backend,
                    atpg_seed=self.atpg_seed)
            report.classifications.update(improvements)
            report.phase_runtimes.update(esc_runtimes)
            for key, value in esc_stats.items():
                report.stats[key] = report.stats.get(key, 0) + value
            patterns = patterns + esc_patterns

        if self.effort is AtpgEffort.FULL and patterns:
            from repro.atpg.portfolio import compact_patterns

            phase_start = time.perf_counter()
            order = {fault: i for i, fault in enumerate(remaining)}
            patterns.sort(key=lambda entry: order[entry[0]])
            report.patterns, report.compaction = compact_patterns(
                self.netlist, patterns, kernel=self.kernel)
            report.phase_runtimes["compaction"] = (time.perf_counter()
                                                   - phase_start)

        report.runtime_seconds = time.perf_counter() - start
        return report

    def classify_fault_list(self, fault_list: FaultList,
                            only_unclassified: bool = True) -> UntestabilityReport:
        """Classify a :class:`FaultList` in place and return the report."""
        faults = (fault_list.unclassified() if only_unclassified
                  else fault_list.faults())
        report = self.classify(faults)
        for fault, cls in report.classifications.items():
            fault_list.classify(fault, cls)
        return report
