"""The structural-untestability engine — this package's stand-in for TetraMax.

The engine classifies a fault list against a (possibly manipulated) netlist
in up to three phases, selected by :class:`AtpgEffort`:

1. **TIE** — tied-value analysis (:class:`repro.atpg.tie_analysis.TieAnalysis`):
   linear-time, sound identification of UT/UB/UO faults.  This is the phase
   the paper's flow relies on ("untestable due to tied value - UT").
2. **RANDOM** — a burst of bit-parallel random patterns marks easily
   detectable faults DT, shrinking the population the expensive phase sees.
3. **FULL** — PODEM on every remaining unclassified fault: proves redundancy
   (UU), finds a test (DT), or gives up (AU) at the backtrack limit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.atpg.implication import ImplicationEngine
from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.random_patterns import random_pattern_detection
from repro.atpg.tie_analysis import TieAnalysis
from repro.faults.categories import FaultClass
from repro.faults.models import Fault
from repro.faults.faultlist import FaultList
from repro.netlist.module import Netlist


class AtpgEffort(str, Enum):
    """How much work the engine spends per fault."""

    TIE = "tie"
    RANDOM = "random"
    FULL = "full"


def resolve_effort(effort: object,
                   default: Optional[AtpgEffort] = None) -> Optional[AtpgEffort]:
    """Coerce an effort spec (enum member, string or None) to an enum member.

    The single effort parser shared by :func:`repro.analyze`, the
    :class:`repro.api.Session` defaults, the scenario-grid expansion and the
    CLI.  ``None`` resolves to ``default``; strings are matched
    case-insensitively against the enum values.
    """
    if effort is None:
        return default
    if isinstance(effort, AtpgEffort):
        return effort
    try:
        return AtpgEffort(str(effort).strip().lower())
    except ValueError:
        names = ", ".join(e.value for e in AtpgEffort)
        raise ValueError(
            f"unknown ATPG effort {effort!r}; expected one of: {names}"
        ) from None


@dataclass
class UntestabilityReport:
    """Classification outcome for one engine run."""

    effort: AtpgEffort
    classifications: Dict[Fault, FaultClass] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    phase_runtimes: Dict[str, float] = field(default_factory=dict)
    #: Search statistics: faults proven statically (total and per proof
    #: category), PODEM invocations, backtracks, learned-implication skips.
    stats: Dict[str, int] = field(default_factory=dict)

    def with_class(self, *classes: FaultClass) -> List[Fault]:
        wanted = set(classes)
        return [f for f, c in self.classifications.items() if c in wanted]

    @property
    def untestable(self) -> List[Fault]:
        return [f for f, c in self.classifications.items() if c.is_untestable]

    @property
    def detected(self) -> List[Fault]:
        return [f for f, c in self.classifications.items() if c.is_detected]

    def counts(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for cls in self.classifications.values():
            result[cls.value] = result.get(cls.value, 0) + 1
        return result


def run_detection_phases(netlist: Netlist, faults: List[Fault],
                         effort: AtpgEffort, *,
                         random_patterns: int = 256,
                         backtrack_limit: int = 200,
                         seed: int = 2013,
                         static_prune: bool = True,
                         static_learning: bool = True,
                         kernel: Optional[str] = None):
    """Phases 2-3 of the engine: random-pattern detection, then PODEM.

    Operates on faults the tied-value analysis left unclassified.  Every
    verdict is per-fault (the random phase replays one seeded pattern
    burst, PODEM searches per fault), so the result is independent of how
    the fault list is batched — which is what lets the sharded classifier
    (:func:`repro.simulation.sharded.sharded_classify`) run the tie
    fixpoint once and farm only these phases out to workers.

    At FULL effort the static-analysis layer (:mod:`repro.analysis`) joins
    in: with ``static_prune`` the prover classifies faults UU *before* any
    PODEM call; with ``static_learning`` the remaining searches consult the
    learned implications and SCOAP guidance.  Both default on; turning both
    off reproduces the plain search bit-for-bit (the oracle path).

    Returns ``(classifications, phase_runtimes, stats)``.
    """
    classifications: Dict[Fault, FaultClass] = {}
    phase_runtimes: Dict[str, float] = {}
    stats: Dict[str, int] = {}
    remaining = list(faults)

    if effort in (AtpgEffort.RANDOM, AtpgEffort.FULL) and remaining:
        phase_start = time.perf_counter()
        detected = random_pattern_detection(
            netlist, remaining, n_patterns=random_patterns, seed=seed,
            kernel=kernel)
        for fault in detected:
            classifications[fault] = FaultClass.DT
        remaining = [f for f in remaining if f not in detected]
        phase_runtimes["random"] = time.perf_counter() - phase_start

    if effort is AtpgEffort.FULL and remaining:
        static = None
        if static_prune or static_learning:
            from repro.analysis import get_static_analysis

            phase_start = time.perf_counter()
            static = get_static_analysis(netlist)
            phase_runtimes["static_build"] = time.perf_counter() - phase_start

        if static is not None and static_prune:
            phase_start = time.perf_counter()
            unproven: List[Fault] = []
            for fault in remaining:
                proof = static.prove(fault)
                if proof is None:
                    unproven.append(fault)
                    continue
                classifications[fault] = FaultClass.UU
                stats["static_proved"] = stats.get("static_proved", 0) + 1
                key = f"static_proved_{proof.category}"
                stats[key] = stats.get(key, 0) + 1
            remaining = unproven
            phase_runtimes["static_prune"] = time.perf_counter() - phase_start

        phase_start = time.perf_counter()
        podem = Podem(netlist, backtrack_limit=backtrack_limit,
                      static=static if static_learning else None)
        backtracks = 0
        for fault in remaining:
            result = podem.generate(fault)
            backtracks += result.backtracks
            if result.status is PodemStatus.DETECTED:
                classifications[fault] = FaultClass.DT
            elif result.status is PodemStatus.UNTESTABLE:
                classifications[fault] = FaultClass.UU
            else:
                classifications[fault] = FaultClass.AU
        phase_runtimes["podem"] = time.perf_counter() - phase_start
        stats["podem_calls"] = stats.get("podem_calls", 0) + len(remaining)
        stats["podem_backtracks"] = (stats.get("podem_backtracks", 0)
                                     + backtracks)
        if static is not None and static_learning:
            stats["learned_skips"] = (stats.get("learned_skips", 0)
                                      + podem.learned_skips)

    return classifications, phase_runtimes, stats


class StructuralUntestabilityEngine:
    """Classifies stuck-at faults of a netlist (TetraMax-style).

    ``jobs`` > 1 shards the fault population across worker processes or
    threads (:func:`repro.simulation.sharded.sharded_classify`): each shard
    runs the same phase stack on its cone-aware slice and the merged report
    carries exactly the serial classifications.  ``backend``/``shards``
    tune the sharded run; with the default ``jobs=1`` the engine is the
    serial reference.
    """

    def __init__(self, netlist: Netlist,
                 effort: AtpgEffort = AtpgEffort.TIE,
                 random_patterns: int = 256,
                 backtrack_limit: int = 200,
                 seed: int = 2013,
                 jobs: int = 1,
                 backend: Optional[str] = None,
                 shards: Optional[int] = None,
                 static_prune: bool = True,
                 static_learning: bool = True,
                 kernel: Optional[str] = None) -> None:
        self.netlist = netlist
        self.effort = effort
        self.random_patterns = random_patterns
        self.backtrack_limit = backtrack_limit
        self.seed = seed
        self.jobs = max(1, jobs if jobs is not None else 1)
        self.backend = backend
        self.shards = shards
        self.static_prune = static_prune
        self.static_learning = static_learning
        self.kernel = kernel
        self.implication = ImplicationEngine(netlist)

    def classify(self, faults: Iterable[Fault]) -> UntestabilityReport:
        """Classify the given faults; unclassified faults are omitted from the
        report at TIE effort and reported NC/AU/DT at higher efforts."""
        fault_list = list(faults)
        if self.jobs > 1 and len(fault_list) > 1:
            from repro.simulation.sharded import sharded_classify

            return sharded_classify(
                self.netlist, fault_list, effort=self.effort,
                jobs=self.jobs, backend=self.backend, shards=self.shards,
                random_patterns=self.random_patterns,
                backtrack_limit=self.backtrack_limit, seed=self.seed,
                static_prune=self.static_prune,
                static_learning=self.static_learning,
                kernel=self.kernel)
        report = UntestabilityReport(effort=self.effort)
        start = time.perf_counter()

        # Phase 1: tied-value analysis.
        phase_start = time.perf_counter()
        tie = TieAnalysis(self.netlist, self.implication)
        tie_result = tie.run(fault_list)
        report.classifications.update(tie_result.classifications)
        report.phase_runtimes["tie"] = time.perf_counter() - phase_start

        remaining = [f for f in fault_list if f not in report.classifications]
        classifications, phase_runtimes, stats = run_detection_phases(
            self.netlist, remaining, self.effort,
            random_patterns=self.random_patterns,
            backtrack_limit=self.backtrack_limit, seed=self.seed,
            static_prune=self.static_prune,
            static_learning=self.static_learning,
            kernel=self.kernel)
        report.classifications.update(classifications)
        report.phase_runtimes.update(phase_runtimes)
        report.stats.update(stats)

        report.runtime_seconds = time.perf_counter() - start
        return report

    def classify_fault_list(self, fault_list: FaultList,
                            only_unclassified: bool = True) -> UntestabilityReport:
        """Classify a :class:`FaultList` in place and return the report."""
        faults = (fault_list.unclassified() if only_unclassified
                  else fault_list.faults())
        report = self.classify(faults)
        for fault, cls in report.classifications.items():
            fault_list.classify(fault, cls)
        return report
