"""Random-pattern detection phase.

Before spending PODEM effort on every fault, the untestability engine runs a
burst of random patterns through the bit-parallel fault simulator: any fault
a random pattern detects is certainly testable (class DT) and can be skipped
by the expensive phases.  This is the standard "random phase" of an ATPG
flow and keeps the pure-Python engine practical.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Set

from repro.faults.models import Fault
from repro.netlist.module import Netlist
from repro.simulation.parallel import ParallelPatternSimulator
from repro.utils.bitvec import mask


def random_pattern_detection(netlist: Netlist,
                             faults: Iterable[Fault],
                             n_patterns: int = 256,
                             word_size: int = 64,
                             seed: int = 2013,
                             simulator: Optional[ParallelPatternSimulator] = None,
                             kernel: Optional[str] = None,
                             ) -> Set[Fault]:
    """Return the subset of ``faults`` detected by random patterns.

    Patterns are applied to every controllable point of the combinational
    view (primary inputs and flip-flop outputs) except tied nets, which keep
    their tie value.
    """
    rng = random.Random(seed)
    sim = simulator or ParallelPatternSimulator(netlist, kernel=kernel)

    controllable = []
    for port in netlist.input_ports():
        if netlist.net(port).tied is None:
            controllable.append(port)
    for inst in netlist.sequential_instances():
        for pin in inst.output_pins():
            if pin.net is not None and pin.net.tied is None:
                controllable.append(pin.net.name)

    remaining: Set[Fault] = set(faults)
    detected: Set[Fault] = set()
    applied = 0
    while applied < n_patterns and remaining:
        width = min(word_size, n_patterns - applied)
        word_mask = mask(width)
        patterns: Dict[str, int] = {
            net: rng.getrandbits(width) & word_mask for net in controllable
        }
        newly = sim.detected_faults(remaining, patterns, width)
        detected |= newly
        remaining -= newly
        applied += width
    return detected
