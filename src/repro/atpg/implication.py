"""Forward implication / constant propagation.

The heart of the paper's identification method is propagating the constants
introduced by circuit manipulation (tied debug inputs, tied address-register
bits) through the combinational logic and asking which lines end up with a
solid value during the whole mission ("untestable due to tied value" in
TetraMax terms).  :func:`implied_constants` performs that propagation; the
:class:`ImplicationEngine` additionally answers controllability questions
(which lines can still be set to 0 and to 1 from the free inputs) using a
conservative but sound analysis.

The propagation itself runs through the compiled-IR
:class:`~repro.simulation.simulator.CombinationalSimulator`, so repeated
constructions here (one per manipulation scenario) all share the netlist's
cached :class:`~repro.netlist.compiled.CompiledNetlist` and its levelized
evaluation program.
"""

from __future__ import annotations

import heapq
from typing import (Dict, List, Mapping, MutableMapping, Optional, Sequence,
                    Set)

from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import CompiledNetlist
from repro.netlist.module import Netlist
from repro.simulation.simulator import CombinationalSimulator, scalar3_program


def implied_constants(netlist: Netlist,
                      extra_constants: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
    """Net values implied by tied nets (and optional extra constants).

    Every free primary input and flip-flop output is X; tied nets take their
    tie value; the three-valued simulation then yields, for every net, either
    a definite constant (the net holds that value under *every* input
    combination) or X.  Only the definite entries are returned.
    """
    sim = CombinationalSimulator(netlist)
    overrides = dict(extra_constants) if extra_constants else None
    values = sim.evaluate({}, state=None, overrides=overrides)
    return {net: v for net, v in values.items() if v != LOGIC_X}


def sequential_implied_constants(netlist: Netlist,
                                 extra_constants: Optional[Mapping[str, int]] = None,
                                 max_iterations: int = 50) -> Dict[str, int]:
    """Constants implied through flip-flops (mission steady-state values).

    Iterates combinational constant propagation with a sequential step: a
    flip-flop whose next-state function evaluates to a definite value under
    the current constants (e.g. an asynchronous reset held active by a tied
    pin, or a capture mux whose selected leg is constant) holds that value
    for the whole mission, so its output net joins the constant set.  The
    fixpoint is what a commercial tool reports as "tied" lines after the
    paper's circuit-manipulation step, including whole debug blocks that are
    frozen behind a tied reset or enable.
    """
    sim = CombinationalSimulator(netlist)
    state_constants: Dict[str, int] = dict(extra_constants) if extra_constants else {}

    values: Dict[str, int] = {}
    for _ in range(max_iterations):
        values = sim.evaluate({}, state=None, overrides=state_constants or None)
        changed = False
        for inst in netlist.sequential_instances():
            pin_values = {
                pin.port: (values[pin.net.name] if pin.net is not None else LOGIC_X)
                for pin in inst.input_pins()
            }
            next_value = inst.cell.evaluate(pin_values).get("__next__", LOGIC_X)
            if next_value == LOGIC_X:
                continue
            for out_pin in inst.output_pins():
                net = out_pin.net
                if net is None or net.tied is not None:
                    continue
                if state_constants.get(net.name) != next_value:
                    state_constants[net.name] = next_value
                    changed = True
        if not changed:
            break

    values = sim.evaluate({}, state=None, overrides=state_constants or None)
    return {net: v for net, v in values.items() if v != LOGIC_X}


def forward_implications(compiled: CompiledNetlist,
                         seeds: Mapping[int, int],
                         base: Sequence[int],
                         stats: Optional[MutableMapping[str, int]] = None
                         ) -> Dict[int, int]:
    """Event-driven forward propagation of ``seeds`` over a ``base`` valuation.

    ``base`` is a full per-net-ID valuation (typically the three-valued
    constant fixpoint of the netlist); ``seeds`` overrides individual nets.
    The returned dict holds every net whose value differs from ``base`` (plus
    the seeds themselves) after propagating through the combinational ops.

    The worklist is a min-heap of dirty op indices with a membership set for
    dedupe, processed in ascending topological order.  Because every fanin of
    an op is driven by a lower-indexed op, each op is evaluated at most once
    per call; and an op whose re-evaluation reproduces the value a net
    already holds does not re-enqueue that net's loads — the (net, value)
    dedupe that keeps repeated learning passes linear.  ``stats`` (if given)
    accumulates the number of op evaluations under ``"op_evals"``.
    """
    program = scalar3_program(compiled)
    op_fanin = compiled.op_fanin
    op_fanout = compiled.op_fanout
    net_load_ops = compiled.net_load_ops
    tied = compiled.tied

    values: Dict[int, int] = {}
    heap: List[int] = []
    pending: Set[int] = set()

    def schedule_loads(nid: int) -> None:
        for op, _pos in net_load_ops[nid]:
            if op not in pending:
                pending.add(op)
                heapq.heappush(heap, op)

    for nid, value in seeds.items():
        values[nid] = value
        if value != base[nid]:
            schedule_loads(nid)

    evals = 0
    while heap:
        op = heapq.heappop(heap)
        pending.discard(op)
        evals += 1
        ins = tuple(values.get(n, base[n]) if n >= 0 else LOGIC_X
                    for n in op_fanin[op])
        outs = program[op](*ins)
        for out_net, value in zip(op_fanout[op], outs):
            if out_net < 0 or tied[out_net] is not None:
                continue
            if value == values.get(out_net, base[out_net]):
                continue
            values[out_net] = value
            schedule_loads(out_net)

    if stats is not None:
        stats["op_evals"] = stats.get("op_evals", 0) + evals
    return values


class ImplicationEngine:
    """Constant propagation plus simple controllability reasoning.

    The engine pre-computes the constants implied by the netlist's tied nets.
    It exposes:

    * :meth:`constant_of` — the implied mission-mode constant of a net;
    * :meth:`can_take` — whether a net can (conservatively) still take a
      given logic value by some assignment of the free inputs;
    * :meth:`propagation_blocked` — whether a fault effect on a given net is
      structurally prevented from passing through a specific load gate
      because a side input is held at a controlling constant.
    """

    # Controlling values per cell family: an input at this value forces the
    # output regardless of the other inputs.
    _CONTROLLING = {
        "AND": LOGIC_0, "NAND": LOGIC_0,
        "OR": LOGIC_1, "NOR": LOGIC_1,
    }

    def __init__(self, netlist: Netlist,
                 extra_constants: Optional[Mapping[str, int]] = None,
                 through_sequential: bool = True) -> None:
        self.netlist = netlist
        if through_sequential:
            self.constants = sequential_implied_constants(netlist, extra_constants)
        else:
            self.constants = implied_constants(netlist, extra_constants)

    def constant_of(self, net_name: str) -> Optional[int]:
        """The implied constant of a net, or None if the net can still toggle."""
        return self.constants.get(net_name)

    def can_take(self, net_name: str, value: int) -> bool:
        """Conservatively: can the net take ``value`` for some free-input assignment?

        A net with an implied constant can only take that constant; any other
        net is assumed (optimistically for testability, conservatively for
        untestability claims) to be able to take both values.
        """
        constant = self.constants.get(net_name)
        if constant is None:
            return True
        return constant == value

    @staticmethod
    def _cell_family(cell_name: str) -> str:
        return cell_name.rstrip("0123456789")

    def propagation_blocked(self, through_instance, from_pin_port: str,
                            untrusted_nets: Optional[Set[str]] = None) -> bool:
        """True if a fault effect entering ``through_instance`` at pin
        ``from_pin_port`` can never influence the instance output.

        Sound (never claims "blocked" wrongly) but incomplete: it only checks
        side inputs held at controlling constants for simple gate families
        and select/enable constants for multiplexers and scan/debug cells.

        ``untrusted_nets`` names nets whose implied constants must not be
        relied upon — the caller passes the fanout cone of the fault site, on
        which the fault effect itself may overturn the implied value (e.g. a
        gate whose both inputs branch from the faulty net).
        """
        cell = through_instance.cell
        family = self._cell_family(cell.name)

        def side_constant(net) -> Optional[int]:
            if net is None:
                return None
            if untrusted_nets is not None and net.name in untrusted_nets:
                return None
            return self.constants.get(net.name)

        side_values: Dict[str, Optional[int]] = {}
        for pin in through_instance.input_pins():
            if pin.port == from_pin_port:
                continue
            side_values[pin.port] = side_constant(pin.net)

        if family in self._CONTROLLING:
            controlling = self._CONTROLLING[family]
            return any(v == controlling for v in side_values.values())

        if cell.name == "MUX2":
            sel = side_values.get("S")
            if from_pin_port == "D0" and sel == LOGIC_1:
                return True
            if from_pin_port == "D1" and sel == LOGIC_0:
                return True
            if from_pin_port == "S":
                d0 = side_values.get("D0")
                d1 = side_values.get("D1")
                return d0 is not None and d0 == d1
            return False

        if cell.name in ("AO21", "AOI21"):
            # Y = (A&B)|C  (possibly inverted)
            if from_pin_port in ("A", "B"):
                other = "B" if from_pin_port == "A" else "A"
                return side_values.get(other) == LOGIC_0 or side_values.get("C") == LOGIC_1
            if from_pin_port == "C":
                return (side_values.get("A") == LOGIC_1
                        and side_values.get("B") == LOGIC_1)
            return False

        if cell.name in ("OA21", "OAI21"):
            # Y = (A|B)&C (possibly inverted)
            if from_pin_port in ("A", "B"):
                other = "B" if from_pin_port == "A" else "A"
                return side_values.get(other) == LOGIC_1 or side_values.get("C") == LOGIC_0
            if from_pin_port == "C":
                return (side_values.get("A") == LOGIC_0
                        and side_values.get("B") == LOGIC_0)
            return False

        if cell.sequential:
            # Propagation through a flip-flop's data path is blocked when the
            # capture mux constantly selects the other leg (e.g. SE tied to 0
            # blocks SI; DE tied to 0 blocks DI; reset held active blocks D).
            reset_pin = cell.role_pin("reset")
            if reset_pin and side_values.get(reset_pin) == cell.role_value("reset_active"):
                return True
            se_pin = cell.role_pin("scan_enable")
            se_active = cell.role_value("scan_enable_active")
            if se_pin:
                se_const = side_constant(through_instance.pin(se_pin).net)
                if from_pin_port == cell.role_pin("scan_in"):
                    if se_const is not None and se_const != se_active:
                        return True
                if from_pin_port == cell.role_pin("data"):
                    if se_const is not None and se_const == se_active:
                        return True
            de_pin = cell.role_pin("debug_enable")
            de_active = cell.role_value("debug_enable_active")
            if de_pin:
                de_const = side_constant(through_instance.pin(de_pin).net)
                if from_pin_port == cell.role_pin("debug_in"):
                    if de_const is not None and de_const != de_active:
                        return True
                if from_pin_port == cell.role_pin("data"):
                    if de_const is not None and de_const == de_active:
                        return True
            return False

        # XOR/XNOR, BUF, INV, adders: a definite change on one input always
        # changes (or may change) the output — never blocked by constants.
        return False
