"""Combinational ATPG and structural-untestability analysis.

This package plays the role of the commercial ATPG tool (Synopsys TetraMax)
in the paper's flow: it classifies stuck-at faults of the combinational view
of a netlist into detected / untestable-due-to-tied-value / redundant /
abandoned classes.  The on-line untestability identification in
:mod:`repro.core` manipulates the circuit (ties, floating outputs) and then
calls this engine, exactly as the paper does with TetraMax.
"""

from repro.atpg.d_algebra import DValue, FIVE_D, FIVE_DBAR, FIVE_ONE, FIVE_X, FIVE_ZERO
from repro.atpg.implication import (
    ImplicationEngine,
    implied_constants,
    sequential_implied_constants,
)
from repro.atpg.podem import Podem, PodemResult, PodemStatus
from repro.atpg.dalg import DAlg
from repro.atpg.tie_analysis import TieAnalysis, TieAnalysisResult
from repro.atpg.random_patterns import random_pattern_detection
from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine, UntestabilityReport
from repro.atpg.portfolio import (
    ATPG_BACKENDS,
    AtpgBackend,
    DEFAULT_ATPG_BACKEND,
    RestartPodem,
    atpg_backend_names,
    compact_patterns,
    register_atpg_backend,
    resolve_atpg_backend,
)

__all__ = [
    "DValue",
    "FIVE_ZERO",
    "FIVE_ONE",
    "FIVE_X",
    "FIVE_D",
    "FIVE_DBAR",
    "ImplicationEngine",
    "implied_constants",
    "sequential_implied_constants",
    "Podem",
    "PodemResult",
    "PodemStatus",
    "DAlg",
    "RestartPodem",
    "TieAnalysis",
    "TieAnalysisResult",
    "random_pattern_detection",
    "AtpgEffort",
    "StructuralUntestabilityEngine",
    "UntestabilityReport",
    "ATPG_BACKENDS",
    "AtpgBackend",
    "DEFAULT_ATPG_BACKEND",
    "atpg_backend_names",
    "compact_patterns",
    "register_atpg_backend",
    "resolve_atpg_backend",
]
