"""Tied-value untestability analysis ("UT" classification).

This is the work-horse of the paper's methodology: after the circuit
manipulation step ties debug inputs / constant address bits to fixed values
(and/or floats debug-only outputs), this analysis finds every stuck-at fault
that has become untestable because of those constants:

* **UT** — the fault site is held at the stuck value by an implied constant,
  so the fault can never be excited;
* **UB** — the fault can be excited, but every propagation path towards an
  observation point passes through a gate whose side input is held at a
  controlling constant (or through a capture mux whose select is tied the
  wrong way), so the effect can never advance;
* **UO** — the fault effect can only ever reach output ports that have been
  disconnected (left floating), so it can never be observed.

The analysis is *sound*: every fault it reports is genuinely untestable in
the manipulated circuit.  It is deliberately not complete — faults requiring
a full redundancy proof are left to PODEM (see
:class:`repro.atpg.engine.StructuralUntestabilityEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.atpg.implication import ImplicationEngine
from repro.faults.categories import FaultClass
from repro.faults.fault import StuckAtFault
from repro.netlist.cells import LOGIC_X
from repro.netlist.module import Netlist, Pin


@dataclass
class TieAnalysisResult:
    """Outcome of a tied-value analysis over a set of faults."""

    unexcitable: Set[StuckAtFault] = field(default_factory=set)       # UT
    propagation_blocked: Set[StuckAtFault] = field(default_factory=set)  # UB
    unobservable: Set[StuckAtFault] = field(default_factory=set)      # UO
    classifications: Dict[StuckAtFault, FaultClass] = field(default_factory=dict)

    @property
    def untestable(self) -> Set[StuckAtFault]:
        return self.unexcitable | self.propagation_blocked | self.unobservable

    def count(self) -> int:
        return len(self.untestable)


class TieAnalysis:
    """Classifies faults made untestable by tied nets and floating outputs."""

    def __init__(self, netlist: Netlist,
                 engine: Optional[ImplicationEngine] = None) -> None:
        self.netlist = netlist
        self.engine = engine or ImplicationEngine(netlist)
        self._observe_cache: Dict[str, bool] = {}
        self._reach_cache: Dict[str, bool] = {}
        self._origin_cache: Dict[tuple, bool] = {}

    # ------------------------------------------------------------------ #
    # observability predicates
    # ------------------------------------------------------------------ #
    def _net_observable(self, net_name: str) -> bool:
        """Can a value change on this net reach an observation point, given
        the implied constants?  Observation points are observable output
        ports and sequential-cell inputs whose capture path is not blocked.
        """
        cached = self._observe_cache.get(net_name)
        if cached is not None:
            return cached
        # Mark as False first to terminate on (unexpected) cycles.
        self._observe_cache[net_name] = False
        result = self._search_observation(net_name, untrusted=None, visited=None)
        self._observe_cache[net_name] = result
        return result

    def _search_observation(self, net_name: str,
                            untrusted: Optional[Set[str]],
                            visited: Optional[Set[str]]) -> bool:
        """One step of the observability traversal, in two trust modes.

        ``untrusted=None`` is the normal, globally-cached mode (recursion
        goes through :meth:`_net_observable`).  With an ``untrusted`` cone
        the traversal refuses to let the cone's implied constants block
        propagation and tracks termination with the caller's ``visited``
        set instead of the global cache (the answer then depends on the
        fault origin, so it must not be memoised per net).
        """
        net = self.netlist.nets[net_name]
        if net.is_output_port and net_name not in self.netlist.unobservable_ports:
            return True
        for pin in net.loads:
            inst = pin.instance
            if self.engine.propagation_blocked(inst, pin.port,
                                               untrusted_nets=untrusted):
                continue
            if inst.is_sequential:
                return True
            for out_pin in inst.output_pins():
                if out_pin.net is None:
                    continue
                next_net = out_pin.net.name
                if untrusted is None:
                    if self._net_observable(next_net):
                        return True
                elif next_net not in visited:
                    visited.add(next_net)
                    if self._search_observation(next_net, untrusted, visited):
                        return True
        return False

    def _fanout_cone_nets(self, origins: tuple) -> Set[str]:
        """All nets the fault effect can sit on within one time frame: the
        origin nets plus everything downstream through combinational logic."""
        cone: Set[str] = set()
        work = list(origins)
        while work:
            net_name = work.pop()
            if net_name in cone:
                continue
            cone.add(net_name)
            for pin in self.netlist.nets[net_name].loads:
                if pin.instance.is_sequential:
                    continue
                for out_pin in pin.instance.output_pins():
                    if out_pin.net is not None:
                        work.append(out_pin.net.name)
        return cone

    def _observable_from(self, origins: tuple) -> bool:
        """Origin-aware observability recheck.

        The cached :meth:`_net_observable` trusts every implied constant when
        declaring a propagation path blocked.  That is unsound when the
        blocking side input lies in the fanout cone of the fault site itself
        (reconvergence: both inputs of a gate branch from the faulty net) —
        the fault overturns the very constant doing the blocking.  This
        recheck re-runs the traversal treating the cone's constants as
        untrusted; only if it still finds no path is "blocked" believable.
        """
        cached = self._origin_cache.get(origins)
        if cached is not None:
            return cached
        cone = self._fanout_cone_nets(origins)
        visited: Set[str] = set()
        result = False
        for origin in origins:
            if origin not in visited:
                visited.add(origin)
                if self._search_observation(origin, untrusted=cone,
                                            visited=visited):
                    result = True
                    break
        self._origin_cache[origins] = result
        return result

    def _net_reaches_any_observation(self, net_name: str) -> bool:
        """Pure structural reachability to *any* observation point, ignoring
        constants but honouring floating (unobservable) output ports.
        Used to distinguish UO (nothing observable is even reachable)
        from UB (reachable but blocked by constants)."""
        cached = self._reach_cache.get(net_name)
        if cached is not None:
            return cached
        self._reach_cache[net_name] = False
        net = self.netlist.nets[net_name]
        result = False
        if net.is_output_port and net_name not in self.netlist.unobservable_ports:
            result = True
        else:
            for pin in net.loads:
                inst = pin.instance
                if inst.is_sequential:
                    result = True
                    break
                for out_pin in inst.output_pins():
                    if out_pin.net is not None and self._net_reaches_any_observation(out_pin.net.name):
                        result = True
                        break
                if result:
                    break
        self._reach_cache[net_name] = result
        return result

    # ------------------------------------------------------------------ #
    # per-fault classification
    # ------------------------------------------------------------------ #
    def classify_fault(self, fault: StuckAtFault) -> Optional[FaultClass]:
        """Return UT/UB/UO if the fault is provably untestable, else None."""
        if fault.is_port_fault:
            net_name = fault.site if fault.site in self.netlist.nets else None
            if net_name is None:
                return FaultClass.UO
            constant = self.engine.constant_of(net_name)
            if constant is not None and constant == fault.value:
                return FaultClass.UT
            net = self.netlist.nets[net_name]
            if net.is_output_port:
                if net_name in self.netlist.unobservable_ports:
                    return FaultClass.UO
                return None
            return self._observability_class(net_name)

        pin = self.netlist.pin_by_name(fault.site)
        if pin.net is None:
            return FaultClass.UO
        net_name = pin.net.name

        constant = self.engine.constant_of(net_name)
        if constant is not None and constant == fault.value:
            return FaultClass.UT

        if pin.is_output:
            return self._observability_class(net_name)

        # Branch fault on an instance input: the effect must first pass
        # through this instance, then reach an observation point.
        inst = pin.instance
        if self.engine.propagation_blocked(inst, pin.port):
            return FaultClass.UB
        if inst.is_sequential:
            return self._sequential_branch_class(inst, pin, fault)
        out_nets = tuple(out_pin.net.name for out_pin in inst.output_pins()
                         if out_pin.net is not None)
        if any(self._net_observable(net_name) for net_name in out_nets):
            return None
        if not any(self._net_reaches_any_observation(net_name)
                   for net_name in out_nets):
            return FaultClass.UO  # nothing observable is even reachable
        if self._observable_from(out_nets):
            return None  # only blocked by constants the fault itself upsets
        return FaultClass.UB

    def _sequential_branch_class(self, inst, pin, fault: StuckAtFault
                                 ) -> Optional[FaultClass]:
        """Classification of a fault on a flip-flop input pin.

        In the DFT view a value captured into a flip-flop is observable, so
        such faults are normally testable (None).  The exception — and the
        crux of Fig. 5 in the paper — is a flip-flop whose mission value is an
        implied constant: a fault on its clock, reset or data-select pins that
        cannot make the stored value differ from that constant can never be
        observed (e.g. a stuck clock on a register frozen at 0).
        """
        q_constants = []
        for out_pin in inst.output_pins():
            if out_pin.net is None:
                continue
            constant = self.engine.constant_of(out_pin.net.name)
            if constant is None:
                return None  # the state still moves: the fault is capturable
            q_constants.append(constant)
        if not q_constants:
            return FaultClass.UO

        if pin.port == inst.cell.role_pin("clock"):
            # A stuck clock stops the register from updating: it keeps holding
            # its mission constant, so the fault can never be observed.
            return FaultClass.UB

        pin_values = {}
        for in_pin in inst.input_pins():
            if in_pin is pin:
                pin_values[in_pin.port] = fault.value
            elif in_pin.net is not None:
                value = self.engine.constant_of(in_pin.net.name)
                pin_values[in_pin.port] = value if value is not None else LOGIC_X
            else:
                pin_values[in_pin.port] = LOGIC_X
        faulty_next = inst.cell.evaluate(pin_values).get("__next__", LOGIC_X)
        if faulty_next != LOGIC_X and faulty_next == q_constants[0]:
            # Even with the fault present the register keeps its mission
            # constant, so the fault can never produce a visible effect.
            return FaultClass.UB
        return None

    def _observability_class(self, net_name: str) -> Optional[FaultClass]:
        if self._net_observable(net_name):
            return None
        if not self._net_reaches_any_observation(net_name):
            return FaultClass.UO  # nothing observable is even reachable
        if self._observable_from((net_name,)):
            return None  # only blocked by constants the fault itself upsets
        return FaultClass.UB

    # ------------------------------------------------------------------ #
    def run(self, faults: Iterable[StuckAtFault]) -> TieAnalysisResult:
        """Classify every fault in ``faults``."""
        result = TieAnalysisResult()
        for fault in faults:
            cls = self.classify_fault(fault)
            if cls is None:
                continue
            result.classifications[fault] = cls
            if cls is FaultClass.UT:
                result.unexcitable.add(fault)
            elif cls is FaultClass.UB:
                result.propagation_blocked.add(fault)
            elif cls is FaultClass.UO:
                result.unobservable.add(fault)
        return result
