"""Tied-value untestability analysis ("UT" classification).

This is the work-horse of the paper's methodology: after the circuit
manipulation step ties debug inputs / constant address bits to fixed values
(and/or floats debug-only outputs), this analysis finds every fault that has
become untestable because of those constants.  Whether a constant blocks
excitation is the fault model's call (stuck-at: the constant equals the
stuck value; transition-delay: any constant, since a held net never
transitions); the propagation/observability walks below are
value-independent and shared by every model:

* **UT** — the fault site is held by an implied constant that blocks the
  model's excitation condition, so the fault can never be excited;
* **UB** — the fault can be excited, but every propagation path towards an
  observation point passes through a gate whose side input is held at a
  controlling constant (or through a capture mux whose select is tied the
  wrong way), so the effect can never advance;
* **UO** — the fault effect can only ever reach output ports that have been
  disconnected (left floating), so it can never be observed.

The analysis is *sound*: every fault it reports is genuinely untestable in
the manipulated circuit.  It is deliberately not complete — faults requiring
a full redundancy proof are left to PODEM (see
:class:`repro.atpg.engine.StructuralUntestabilityEngine`).

All graph walks (observability search, structural reachability, fault-origin
fanout cones) run over the ID-indexed connectivity tables of the shared
:class:`~repro.netlist.compiled.CompiledNetlist`, with per-net results
memoised in dense arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.atpg.implication import ImplicationEngine
from repro.faults.categories import FaultClass
from repro.faults.models import Fault, model_of
from repro.netlist.cells import LOGIC_X
from repro.netlist.compiled import NO_NET, get_compiled
from repro.netlist.module import Netlist


@dataclass
class TieAnalysisResult:
    """Outcome of a tied-value analysis over a set of faults."""

    unexcitable: Set[Fault] = field(default_factory=set)       # UT
    propagation_blocked: Set[Fault] = field(default_factory=set)  # UB
    unobservable: Set[Fault] = field(default_factory=set)      # UO
    classifications: Dict[Fault, FaultClass] = field(default_factory=dict)

    @property
    def untestable(self) -> Set[Fault]:
        return self.unexcitable | self.propagation_blocked | self.unobservable

    def count(self) -> int:
        return len(self.untestable)


class TieAnalysis:
    """Classifies faults made untestable by tied nets and floating outputs."""

    def __init__(self, netlist: Netlist,
                 engine: Optional[ImplicationEngine] = None) -> None:
        self.netlist = netlist
        self.engine = engine or ImplicationEngine(netlist)
        self.compiled = get_compiled(netlist)
        n = self.compiled.n_nets
        self._observe_cache: List[Optional[bool]] = [None] * n
        self._reach_cache: List[Optional[bool]] = [None] * n
        self._origin_cache: Dict[Tuple[int, ...], bool] = {}

    # ------------------------------------------------------------------ #
    # observability predicates
    # ------------------------------------------------------------------ #
    def _net_observable(self, nid: int) -> bool:
        """Can a value change on this net reach an observation point, given
        the implied constants?  Observation points are observable output
        ports and sequential-cell inputs whose capture path is not blocked.
        """
        cached = self._observe_cache[nid]
        if cached is not None:
            return cached
        # Mark as False first to terminate on (unexpected) cycles.
        self._observe_cache[nid] = False
        result = self._search_observation(nid, untrusted=None, visited=None)
        self._observe_cache[nid] = result
        return result

    def _search_observation(self, nid: int,
                            untrusted: Optional[Set[str]],
                            visited: Optional[Set[int]]) -> bool:
        """One step of the observability traversal, in two trust modes.

        ``untrusted=None`` is the normal, globally-cached mode (recursion
        goes through :meth:`_net_observable`).  With an ``untrusted`` cone
        (net *names*, for the implication engine) the traversal refuses to
        let the cone's implied constants block propagation and tracks
        termination with the caller's ``visited`` ID set instead of the
        global cache (the answer then depends on the fault origin, so it
        must not be memoised per net).
        """
        compiled = self.compiled
        if compiled.is_observable_output[nid]:
            return True
        engine = self.engine
        for op, pos in compiled.net_load_ops[nid]:
            inst = compiled.instances[op]
            port = compiled.op_cell[op].inputs[pos]
            if engine.propagation_blocked(inst, port, untrusted_nets=untrusted):
                continue
            for out in compiled.op_fanout[op]:
                if out < 0:
                    continue
                if untrusted is None:
                    if self._net_observable(out):
                        return True
                elif out not in visited:
                    visited.add(out)
                    if self._search_observation(out, untrusted, visited):
                        return True
        for sq, pos in compiled.net_load_seqs[nid]:
            inst = compiled.seq_instances[sq]
            port = compiled.seq_cell[sq].inputs[pos]
            if not engine.propagation_blocked(inst, port,
                                              untrusted_nets=untrusted):
                return True
        return False

    def _observable_from(self, origins: Tuple[int, ...]) -> bool:
        """Origin-aware observability recheck.

        The cached :meth:`_net_observable` trusts every implied constant when
        declaring a propagation path blocked.  That is unsound when the
        blocking side input lies in the fanout cone of the fault site itself
        (reconvergence: both inputs of a gate branch from the faulty net) —
        the fault overturns the very constant doing the blocking.  This
        recheck re-runs the traversal treating the cone's constants as
        untrusted; only if it still finds no path is "blocked" believable.
        """
        cached = self._origin_cache.get(origins)
        if cached is not None:
            return cached
        compiled = self.compiled
        cone_ids: Set[int] = set()
        for origin in origins:
            cone_ids |= compiled.fanout_nets(origin)
        names = compiled.net_names
        cone_names = {names[nid] for nid in cone_ids}
        visited: Set[int] = set()
        result = False
        for origin in origins:
            if origin not in visited:
                visited.add(origin)
                if self._search_observation(origin, untrusted=cone_names,
                                            visited=visited):
                    result = True
                    break
        self._origin_cache[origins] = result
        return result

    def _net_reaches_any_observation(self, nid: int) -> bool:
        """Pure structural reachability to *any* observation point, ignoring
        constants but honouring floating (unobservable) output ports.
        Used to distinguish UO (nothing observable is even reachable)
        from UB (reachable but blocked by constants)."""
        cached = self._reach_cache[nid]
        if cached is not None:
            return cached
        self._reach_cache[nid] = False
        compiled = self.compiled
        result = False
        if compiled.is_observable_output[nid]:
            result = True
        elif compiled.net_load_seqs[nid]:
            result = True  # a flip-flop captures the value
        else:
            for op, _pos in compiled.net_load_ops[nid]:
                for out in compiled.op_fanout[op]:
                    if out >= 0 and self._net_reaches_any_observation(out):
                        result = True
                        break
                if result:
                    break
        self._reach_cache[nid] = result
        return result

    # ------------------------------------------------------------------ #
    # per-fault classification
    # ------------------------------------------------------------------ #
    def classify_fault(self, fault: Fault) -> Optional[FaultClass]:
        """Return UT/UB/UO if the fault is provably untestable, else None."""
        compiled = self.compiled
        if fault.is_port_fault:
            nid = compiled.id_of(fault.site)
            if nid is None:
                return FaultClass.UO
            constant = self.engine.constant_of(fault.site)
            if constant is not None and model_of(fault).excitation_blocked(
                    fault, constant):
                return FaultClass.UT
            if compiled.is_output_port[nid]:
                if fault.site in self.netlist.unobservable_ports:
                    return FaultClass.UO
                return None
            return self._observability_class(nid)

        kind, index, pos, is_input = compiled.pin_ref(fault.site)
        nid = compiled.pin_net_id(kind, index, pos, is_input)
        if nid == NO_NET:
            return FaultClass.UO

        constant = self.engine.constant_of(compiled.net_names[nid])
        if constant is not None and model_of(fault).excitation_blocked(
                fault, constant):
            return FaultClass.UT

        if not is_input:
            return self._observability_class(nid)

        # Branch fault on an instance input: the effect must first pass
        # through this instance, then reach an observation point.
        if kind == "seq":
            inst = compiled.seq_instances[index]
            port = compiled.seq_cell[index].inputs[pos]
            if self.engine.propagation_blocked(inst, port):
                return FaultClass.UB
            return self._sequential_branch_class(index, port, fault)

        inst = compiled.instances[index]
        port = compiled.op_cell[index].inputs[pos]
        if self.engine.propagation_blocked(inst, port):
            return FaultClass.UB
        out_ids = tuple(out for out in compiled.op_fanout[index] if out >= 0)
        if any(self._net_observable(out) for out in out_ids):
            return None
        if not any(self._net_reaches_any_observation(out) for out in out_ids):
            return FaultClass.UO  # nothing observable is even reachable
        if self._observable_from(out_ids):
            return None  # only blocked by constants the fault itself upsets
        return FaultClass.UB

    def _sequential_branch_class(self, seq_index: int, port: str,
                                 fault: Fault) -> Optional[FaultClass]:
        """Classification of a fault on a flip-flop input pin.

        In the DFT view a value captured into a flip-flop is observable, so
        such faults are normally testable (None).  The exception — and the
        crux of Fig. 5 in the paper — is a flip-flop whose mission value is an
        implied constant: a fault on its clock, reset or data-select pins that
        cannot make the stored value differ from that constant can never be
        observed (e.g. a stuck clock on a register frozen at 0).
        """
        compiled = self.compiled
        cell = compiled.seq_cell[seq_index]
        names = compiled.net_names
        q_constants = []
        for out in compiled.seq_fanout[seq_index]:
            if out < 0:
                continue
            constant = self.engine.constant_of(names[out])
            if constant is None:
                return None  # the state still moves: the fault is capturable
            q_constants.append(constant)
        if not q_constants:
            return FaultClass.UO

        if port == cell.role_pin("clock"):
            # A stuck clock stops the register from updating: it keeps holding
            # its mission constant, so the fault can never be observed.
            return FaultClass.UB

        pin_values = {}
        for in_pos, in_nid in enumerate(compiled.seq_fanin[seq_index]):
            in_port = cell.inputs[in_pos]
            if in_port == port:
                pin_values[in_port] = fault.value
            elif in_nid >= 0:
                value = self.engine.constant_of(names[in_nid])
                pin_values[in_port] = value if value is not None else LOGIC_X
            else:
                pin_values[in_port] = LOGIC_X
        faulty_next = cell.evaluate(pin_values).get("__next__", LOGIC_X)
        if faulty_next != LOGIC_X and faulty_next == q_constants[0]:
            # Even with the fault present the register keeps its mission
            # constant, so the fault can never produce a visible effect.
            return FaultClass.UB
        return None

    def _observability_class(self, nid: int) -> Optional[FaultClass]:
        if self._net_observable(nid):
            return None
        if not self._net_reaches_any_observation(nid):
            return FaultClass.UO  # nothing observable is even reachable
        if self._observable_from((nid,)):
            return None  # only blocked by constants the fault itself upsets
        return FaultClass.UB

    # ------------------------------------------------------------------ #
    def run(self, faults: Iterable[Fault]) -> TieAnalysisResult:
        """Classify every fault in ``faults``."""
        result = TieAnalysisResult()
        for fault in faults:
            cls = self.classify_fault(fault)
            if cls is None:
                continue
            result.classifications[fault] = cls
            if cls is FaultClass.UT:
                result.unexcitable.add(fault)
            elif cls is FaultClass.UB:
                result.propagation_blocked.add(fault)
            elif cls is FaultClass.UO:
                result.unobservable.add(fault)
        return result
