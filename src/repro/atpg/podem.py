"""PODEM test generation / redundancy proof for any registered fault model.

The generator works on the combinational (full-DFT) view of a netlist,
executed over the compiled integer-ID IR (:mod:`repro.netlist.compiled`):
the five-valued machine is a pair of dense three-valued arrays (good /
faulty) indexed by net ID, evaluated op-by-op through the shared levelized
program, and the backtrace / D-frontier / X-path machinery walks the
precomputed ID-indexed connectivity tables instead of the object graph.

* controllable points — primary-input nets and sequential-cell output nets
  that are not tied by circuit manipulation;
* observation points — observable output ports plus sequential-cell input
  nets.

Single-pattern faults run the classic one-frame search.  Two-pattern
launch-on-capture faults (transition-delay) run a two-time-frame unrolled
search reusing the same five-valued algebra: the *capture* frame is the
one-frame search against the spec's stuck value, and the *launch* frame is
then justified — the excitation net must hold the initialization value, and
every flip-flop output the capture cube assigned must be the next-state the
launch frame produces (the launch-on-capture consistency constraint;
primary inputs are free to change between frames).

A fault for which the decision space is exhausted without finding a test is
*structurally untestable* (class ``UU``); exceeding the backtrack limit gives
``AU`` (abandoned).  This mirrors the role TetraMax plays in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.faults.models import Fault, InjectionSpec, resolve_injection

if TYPE_CHECKING:
    from repro.analysis.prover import StaticAnalysis
    from repro.atpg.implication import ImplicationEngine
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import NO_NET, get_compiled
from repro.netlist.module import Netlist
from repro.simulation.simulator import (PLANE_ENCODING,
                                        plane_program,
                                        scalar3_program)


class PodemStatus(Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    status: PodemStatus
    fault: Fault
    pattern: Dict[str, int] = field(default_factory=dict)
    #: Launch-frame assignments of a two-time-frame test (empty for
    #: single-pattern models): apply ``init_pattern``, clock once, then
    #: apply ``pattern``.
    init_pattern: Dict[str, int] = field(default_factory=dict)
    backtracks: int = 0
    decisions: int = 0


# Gate families used by the backtrace heuristic: (controlling value, inversion).
_FAMILY_PROPS = {
    "AND": (LOGIC_0, False),
    "NAND": (LOGIC_0, True),
    "OR": (LOGIC_1, False),
    "NOR": (LOGIC_1, True),
    "BUF": (None, False),
    "INV": (None, True),
}


def _family(cell_name: str) -> str:
    return cell_name.rstrip("0123456789")


class Podem:
    """Single-fault PODEM ATPG on the combinational view of a netlist.

    The view is constant-aware: flip-flop outputs frozen by the circuit
    manipulation (directly tied, or held by a tied reset/enable — see
    :func:`repro.atpg.implication.sequential_implied_constants`) are treated
    as constants rather than controllable points, and flip-flop inputs whose
    capture path is blocked by such constants are not observation points.
    This keeps PODEM's verdicts consistent with the tied-value analysis the
    identification flow is built on.
    """

    def __init__(self, netlist: Netlist, backtrack_limit: int = 200,
                 implication: Optional["ImplicationEngine"] = None,
                 static: Optional["StaticAnalysis"] = None) -> None:
        from repro.atpg.implication import ImplicationEngine

        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.compiled = get_compiled(netlist)
        self.implication = implication or ImplicationEngine(netlist)
        #: Optional static-analysis handle (repro.analysis): when present,
        #: the learned-implication closure vetoes provably futile decision
        #: branches and SCOAP controllability guides the backtrace.  ``None``
        #: keeps the plain search as the oracle path.
        self.static = static
        #: Decision branches skipped because the learned implications proved
        #: them futile (they would otherwise have cost backtracks).
        self.learned_skips = 0

        compiled = self.compiled
        names = compiled.net_names
        tied = compiled.tied

        # Flip-flop output nets frozen to a mission constant.
        self.fixed_state: Dict[str, int] = {}
        self._fixed_ids: Dict[int, int] = {}
        for fanout in compiled.seq_fanout:
            for nid in fanout:
                if nid < 0 or tied[nid] is not None:
                    continue
                constant = self.implication.constant_of(names[nid])
                if constant is not None:
                    self.fixed_state[names[nid]] = constant
                    self._fixed_ids[nid] = constant

        self.controllable: Set[str] = set()
        self._controllable_ids: Set[int] = set()
        for nid in compiled.input_port_ids:
            if tied[nid] is None:
                self._controllable_ids.add(nid)
        for fanout in compiled.seq_fanout:
            for nid in fanout:
                if (nid >= 0 and tied[nid] is None
                        and nid not in self._fixed_ids):
                    self._controllable_ids.add(nid)
        self.controllable = {names[nid] for nid in self._controllable_ids}

        self._observation_ids: Set[int] = set(compiled.observable_output_ids)
        for i, fanin in enumerate(compiled.seq_fanin):
            inst = compiled.seq_instances[i]
            for pos, nid in enumerate(fanin):
                if nid < 0:
                    continue
                port = compiled.seq_cell[i].inputs[pos]
                if self.implication.propagation_blocked(inst, port):
                    continue
                self._observation_ids.add(nid)
        self.observation: Set[str] = {names[nid] for nid in self._observation_ids}

        # State-output net -> driving sequential instance index (used by the
        # two-time-frame launch justification).
        self._state_driver: Dict[int, int] = {}
        for i, fanout in enumerate(compiled.seq_fanout):
            for nid in fanout:
                if nid >= 0:
                    self._state_driver[nid] = i

    @property
    def order(self) -> list:
        """Topological order of the combinational instances (shared list)."""
        return self.compiled.instances

    # ------------------------------------------------------------------ #
    # fault-site resolution
    # ------------------------------------------------------------------ #
    def _fault_refs(self, fault: Fault) -> Tuple[Optional[int], int, int]:
        """Resolve ``(stem net id, branch op, branch pin pos)`` for a fault.

        A *stem* fault (module port or instance output pin) forces the whole
        net in the faulty machine; a *branch* fault perturbs one input pin
        of a combinational op.  Either field may be absent.
        """
        compiled = self.compiled
        if fault.is_port_fault:
            nid = compiled.id_of(fault.site)
            return nid, -1, -1
        kind, index, pos, is_input = compiled.pin_ref(fault.site)
        nid = compiled.pin_net_id(kind, index, pos, is_input)
        if nid == NO_NET:
            return None, -1, -1
        if not is_input:
            return nid, -1, -1
        if kind == "op":
            return None, index, pos
        # Branch fault on a sequential input pin: the net itself is not
        # perturbed within the combinational time frame.
        return None, -1, -1

    def _fault_excitation_id(self, fault: Fault) -> Optional[int]:
        """Net whose good value must be the opposite of the stuck value."""
        compiled = self.compiled
        if fault.is_port_fault:
            return compiled.id_of(fault.site)
        kind, index, pos, is_input = compiled.pin_ref(fault.site)
        nid = compiled.pin_net_id(kind, index, pos, is_input)
        return nid if nid != NO_NET else None

    # ------------------------------------------------------------------ #
    # five-valued simulation with fault injection (good/faulty ID arrays)
    # ------------------------------------------------------------------ #
    def _simulate(self, assignments: Dict[int, int], stem: Optional[int],
                  branch_op: int, branch_pos: int, fault_value: int
                  ) -> Tuple[List[int], List[int]]:
        compiled = self.compiled
        n = compiled.n_nets
        good = [LOGIC_X] * n
        faulty = [LOGIC_X] * n
        for nid, t in enumerate(compiled.tied):
            if t is not None:
                good[nid] = t
                faulty[nid] = t
        for nid, value in self._fixed_ids.items():
            good[nid] = value
            faulty[nid] = value
        for nid, value in assignments.items():
            good[nid] = value
            faulty[nid] = value
        if stem is not None:
            faulty[stem] = fault_value

        program = scalar3_program(compiled)
        op_fanin = compiled.op_fanin
        op_fanout = compiled.op_fanout
        tied = compiled.tied
        for i, fn in enumerate(program):
            good_args = []
            faulty_args = []
            for pos, nid in enumerate(op_fanin[i]):
                if nid < 0:
                    good_args.append(LOGIC_X)
                    faulty_args.append(LOGIC_X)
                    continue
                good_args.append(good[nid])
                faulty_args.append(fault_value
                                   if (i == branch_op and pos == branch_pos)
                                   else faulty[nid])
            good_out = fn(*good_args)
            faulty_out = fn(*faulty_args)
            for pos, nid in enumerate(op_fanout[i]):
                if nid < 0 or tied[nid] is not None:
                    continue
                good[nid] = good_out[pos]
                faulty[nid] = (fault_value if nid == stem else faulty_out[pos])
        return good, faulty

    # ------------------------------------------------------------------ #
    # PODEM machinery
    # ------------------------------------------------------------------ #
    def _detected(self, good: List[int], faulty: List[int]) -> bool:
        for nid in self._observation_ids:
            g, f = good[nid], faulty[nid]
            if g != LOGIC_X and f != LOGIC_X and g != f:
                return True
        return False

    def _d_frontier(self, good: List[int], faulty: List[int],
                    branch_op: int, branch_pos: int,
                    fault_value: int) -> List[int]:
        compiled = self.compiled
        frontier: List[int] = []
        for i in range(compiled.n_ops):
            out_ok = False
            for nid in compiled.op_fanout[i]:
                if nid < 0:
                    continue
                if good[nid] == LOGIC_X or faulty[nid] == LOGIC_X:
                    out_ok = True  # output still undetermined in five values
            if not out_ok:
                continue
            for pos, nid in enumerate(compiled.op_fanin[i]):
                if nid < 0:
                    continue
                g = good[nid]
                f = (fault_value if (i == branch_op and pos == branch_pos)
                     else faulty[nid])
                if g != LOGIC_X and f != LOGIC_X and g != f:
                    frontier.append(i)
                    break
        return frontier

    def _x_path_exists(self, good: List[int], faulty: List[int],
                       frontier: List[int]) -> bool:
        """Is there a path of X-valued nets from the D-frontier to an
        observation point?"""
        if not frontier:
            return False
        compiled = self.compiled
        work: List[int] = []
        seen: Set[int] = set()
        for op in frontier:
            work.extend(nid for nid in compiled.op_fanout[op] if nid >= 0)
        while work:
            nid = work.pop()
            if nid in seen:
                continue
            seen.add(nid)
            g, f = good[nid], faulty[nid]
            definite = g != LOGIC_X and f != LOGIC_X
            if definite and g == f:
                continue
            if nid in self._observation_ids:
                return True
            work.extend(compiled.net_succ[nid])
        return False

    def _objective(self, fault_value: int, excite: int,
                   good: List[int], frontier: List[int]
                   ) -> Optional[Tuple[int, int]]:
        """Return (net id, value) to pursue next, or None at a dead end."""
        compiled = self.compiled
        g = good[excite]
        wanted = LOGIC_1 - fault_value
        if g == LOGIC_X:
            return (excite, wanted)
        if g == fault_value:
            return None  # cannot excite under current assignments
        # Fault excited: advance the D-frontier.
        for op in frontier:
            family = _family(compiled.op_cell[op].name)
            controlling, _ = _FAMILY_PROPS.get(family, (None, False))
            non_controlling = (LOGIC_1 - controlling
                               if controlling is not None else LOGIC_1)
            for nid in compiled.op_fanin[op]:
                if nid >= 0 and good[nid] == LOGIC_X:
                    return (nid, non_controlling)
        return None

    def _backtrace(self, nid: int, value: int,
                   good: List[int]) -> Optional[Tuple[int, int]]:
        """Walk backwards from an objective to an unassigned controllable net."""
        compiled = self.compiled
        current = nid
        current_value = value
        limit = compiled.n_nets + compiled.n_ops + len(compiled.seq_instances) + 1
        for _ in range(limit):
            if current in self._controllable_ids:
                # Assignable as long as the good machine has not fixed it yet
                # (the faulty component may already be pinned at a fault site).
                if good[current] == LOGIC_X:
                    return (current, current_value)
                return None
            op = compiled.net_driver_op[current]
            if op < 0:
                return None  # undriven, or driven by a sequential cell
            family = _family(compiled.op_cell[op].name)
            controlling, inversion = _FAMILY_PROPS.get(family, (None, False))
            target = (LOGIC_1 - current_value) if inversion else current_value

            chosen = -1
            if self.static is not None:
                # SCOAP guidance: pursue the cheapest-to-justify fanin.
                best_cost: Optional[int] = None
                for fanin_nid in compiled.op_fanin[op]:
                    if fanin_nid >= 0 and good[fanin_nid] == LOGIC_X:
                        cost = self.static.scoap.cc(fanin_nid, target)
                        if best_cost is None or cost < best_cost:
                            chosen = fanin_nid
                            best_cost = cost
            else:
                for fanin_nid in compiled.op_fanin[op]:
                    if fanin_nid >= 0 and good[fanin_nid] == LOGIC_X:
                        chosen = fanin_nid
                        break
            if chosen < 0:
                return None
            current = chosen
            current_value = target
        return None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(self, fault: Fault) -> PodemResult:
        """Attempt to generate a test for ``fault`` (any registered model)."""
        spec = resolve_injection(fault)
        if spec.frames > 1:
            return self._generate_two_frame(fault, spec)
        return self._generate_single(fault, spec.stuck_value)

    def _generate_single(self, fault: Fault, fault_value: int) -> PodemResult:
        """The classic one-frame search against a stuck value."""
        compiled = self.compiled
        excite = self._fault_excitation_id(fault)
        if excite is None:
            # A fault on an unconnected pin can never be excited or observed.
            return PodemResult(PodemStatus.UNTESTABLE, fault)
        tied = compiled.tied[excite]
        if tied is not None and tied == fault_value:
            return PodemResult(PodemStatus.UNTESTABLE, fault)

        stem, branch_op, branch_pos = self._fault_refs(fault)
        names = compiled.net_names

        # Static learning: the values every detecting pattern must justify.
        # A contradiction in the closure proves the excitation value is
        # unreachable, hence the exhaustive search would return UNTESTABLE.
        necessary: Optional[Dict[int, int]] = None
        if self.static is not None:
            necessary = self.static.necessary(excite, LOGIC_1 - fault_value)
            if necessary is None:
                return PodemResult(PodemStatus.UNTESTABLE, fault)

        assignments: Dict[int, int] = {}
        # Decision stack entries: (net id, value, alternative_tried)
        stack: List[List] = []
        backtracks = 0
        decisions = 0

        while True:
            good, faulty = self._simulate(assignments, stem,
                                          branch_op, branch_pos, fault_value)
            if self._detected(good, faulty):
                pattern = {names[nid]: value
                           for nid, value in assignments.items()}
                return PodemResult(PodemStatus.DETECTED, fault,
                                   pattern=pattern,
                                   backtracks=backtracks, decisions=decisions)

            frontier = self._d_frontier(good, faulty, branch_op, branch_pos,
                                        fault_value)
            excited = good[excite] == LOGIC_1 - fault_value
            dead_end = False
            objective = None

            if excited and not frontier:
                # The fault is excited but its effect can no longer advance
                # (every gate it reaches already has a definite output).
                dead_end = True
            elif excited and frontier and not self._x_path_exists(good, faulty,
                                                                  frontier):
                dead_end = True
            else:
                objective = self._objective(fault_value, excite, good,
                                            frontier)
                if objective is None:
                    dead_end = True

            if not dead_end:
                assert objective is not None
                pi = self._backtrace(objective[0], objective[1], good)
                if pi is None:
                    dead_end = True
                else:
                    nid, value = pi
                    skipped = False
                    if necessary is not None:
                        required = necessary.get(nid)
                        if required is not None and required != value:
                            # The suggested branch contradicts a necessary
                            # assignment: take the other branch directly and
                            # mark it tried (the skipped branch is covered
                            # by the static proof, not by search).
                            value = required
                            skipped = True
                            self.learned_skips += 1
                    assignments[nid] = value
                    stack.append([nid, value, skipped])
                    decisions += 1
                    continue

            # Backtrack.
            while stack:
                nid, value, tried = stack[-1]
                if not tried:
                    stack[-1][2] = True
                    assignments[nid] = LOGIC_1 - value
                    backtracks += 1
                    break
                stack.pop()
                assignments.pop(nid, None)
            else:
                return PodemResult(PodemStatus.UNTESTABLE, fault,
                                   backtracks=backtracks, decisions=decisions)

            if backtracks > self.backtrack_limit:
                return PodemResult(PodemStatus.ABORTED, fault,
                                   backtracks=backtracks, decisions=decisions)

    # ------------------------------------------------------------------ #
    # two-time-frame search (launch-on-capture models)
    # ------------------------------------------------------------------ #
    def _generate_two_frame(self, fault: Fault,
                            spec: InjectionSpec) -> PodemResult:
        """Unrolled two-frame search for a launch-on-capture fault.

        Frame 2 (capture) is the one-frame search against the spec's stuck
        value.  Frame 1 (launch) is then justified: the excitation net must
        hold the initialization value, and every flip-flop output the
        capture cube assigned must equal the next-state the launch frame
        produces.  Exhausting the launch search proves untestability only
        when the capture cube imposed no state constraints (the launch
        objective is then capture-independent); otherwise a different
        capture cube might still admit a launch, so the fault is abandoned
        (AU) rather than declared redundant.
        """
        compiled = self.compiled
        excite = self._fault_excitation_id(fault)
        if excite is None:
            return PodemResult(PodemStatus.UNTESTABLE, fault)
        if compiled.tied[excite] is not None or excite in self._fixed_ids:
            # The site is held at a mission constant: it never transitions,
            # so neither polarity can ever be launched.
            return PodemResult(PodemStatus.UNTESTABLE, fault)

        capture = self._generate_single(fault, spec.stuck_value)
        if capture.status is not PodemStatus.DETECTED:
            return capture

        state_objs = self._launch_state_constraints(capture.pattern)
        launch, status, backtracks, decisions = self._justify_launch(
            {excite: spec.init_value}, state_objs)
        backtracks += capture.backtracks
        decisions += capture.decisions
        if status == "found":
            return PodemResult(PodemStatus.DETECTED, fault,
                               pattern=capture.pattern, init_pattern=launch,
                               backtracks=backtracks, decisions=decisions)
        if status == "exhausted" and not state_objs:
            # No input can establish the initialization value at all — the
            # net is functionally constant, independent of the capture cube.
            return PodemResult(PodemStatus.UNTESTABLE, fault,
                               backtracks=backtracks, decisions=decisions)
        return PodemResult(PodemStatus.ABORTED, fault,
                           backtracks=backtracks, decisions=decisions)

    def _launch_state_constraints(self,
                                  capture_pattern: Dict[str, int]
                                  ) -> Dict[int, int]:
        """Sequential indices constrained by the capture cube's state
        assignments, mapped to the next-state value the launch frame must
        produce.  Primary-input assignments impose nothing (inputs are free
        to change between the two frames)."""
        compiled = self.compiled
        constraints: Dict[int, int] = {}
        for name, value in capture_pattern.items():
            nid = compiled.id_of(name)
            if nid is None:
                continue
            seq_index = self._state_driver.get(nid)
            if seq_index is not None:
                constraints[seq_index] = value
        return constraints

    def _seq_next_value(self, seq_index: int, good: List[int]) -> int:
        """Next-state of one sequential cell under a launch-frame good
        machine (three-valued, via the shared plane program)."""
        compiled = self.compiled
        _, seq_program = plane_program(compiled)
        flat: List[int] = []
        for nid in compiled.seq_fanin[seq_index]:
            d = PLANE_ENCODING[good[nid] if nid >= 0 else LOGIC_X]
            flat.append(d[0])
            flat.append(d[1])
        out = seq_program[seq_index](1, *flat)
        return LOGIC_1 if out[0] else (LOGIC_0 if out[1] else LOGIC_X)

    def _seq_objective(self, seq_index: int, want: int,
                       good: List[int]) -> Optional[Tuple[int, int]]:
        """An unassigned net to pursue so a flip-flop's next state moves
        towards ``want`` — the data-role pin first (the launch-on-capture
        functional path), then any undetermined input."""
        compiled = self.compiled
        cell = compiled.seq_cell[seq_index]
        data_pin = cell.role_pin("data")
        fanin = compiled.seq_fanin[seq_index]
        for pos, nid in enumerate(fanin):
            if nid >= 0 and cell.inputs[pos] == data_pin \
                    and good[nid] == LOGIC_X:
                return (nid, want)
        for nid in fanin:
            if nid >= 0 and good[nid] == LOGIC_X:
                return (nid, want)
        return None

    def _justify_launch(self, net_objs: Dict[int, int],
                        state_objs: Dict[int, int]):
        """Find launch-frame assignments meeting net and next-state
        objectives.

        Returns ``(pattern, status, backtracks, decisions)`` with status
        ``"found"``, ``"exhausted"`` (decision space empty) or
        ``"aborted"`` (backtrack limit).  The search reuses PODEM's
        good-machine five-valued simulation, backtrace and decision stack —
        objectives are checked exactly (by simulation), the per-objective
        backtrace is only a search heuristic.
        """
        compiled = self.compiled
        names = compiled.net_names
        assignments: Dict[int, int] = {}
        stack: List[List] = []
        backtracks = 0
        decisions = 0

        while True:
            good, _ = self._simulate(assignments, None, -1, -1, 0)
            conflict = False
            pending: Optional[Tuple[int, int]] = None
            satisfied = True

            for nid, want in net_objs.items():
                g = good[nid]
                if g == LOGIC_X:
                    satisfied = False
                    if pending is None:
                        pending = (nid, want)
                elif g != want:
                    conflict = True
                    break
            if not conflict:
                for seq_index, want in state_objs.items():
                    nxt = self._seq_next_value(seq_index, good)
                    if nxt == LOGIC_X:
                        satisfied = False
                        if pending is None:
                            pending = self._seq_objective(seq_index, want,
                                                          good)
                            if pending is None:
                                conflict = True
                                break
                    elif nxt != want:
                        conflict = True
                        break

            if not conflict and satisfied:
                pattern = {names[nid]: value
                           for nid, value in assignments.items()}
                return pattern, "found", backtracks, decisions

            if not conflict:
                if pending is None:
                    conflict = True
                else:
                    pi = self._backtrace(pending[0], pending[1], good)
                    if pi is None:
                        conflict = True
                    else:
                        nid, value = pi
                        assignments[nid] = value
                        stack.append([nid, value, False])
                        decisions += 1
                        continue

            # Backtrack.
            while stack:
                nid, value, tried = stack[-1]
                if not tried:
                    stack[-1][2] = True
                    assignments[nid] = LOGIC_1 - value
                    backtracks += 1
                    break
                stack.pop()
                assignments.pop(nid, None)
            else:
                return {}, "exhausted", backtracks, decisions

            if backtracks > self.backtrack_limit:
                return {}, "aborted", backtracks, decisions
