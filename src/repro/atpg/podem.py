"""PODEM test-pattern generation / redundancy proof for single stuck-at faults.

The generator works on the combinational (full-DFT) view of a netlist:

* controllable points — primary-input nets and sequential-cell output nets
  that are not tied by circuit manipulation;
* observation points — observable output ports plus sequential-cell input
  nets.

A fault for which the decision space is exhausted without finding a test is
*structurally untestable* (class ``UU``); exceeding the backtrack limit gives
``AU`` (abandoned).  This mirrors the role TetraMax plays in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.atpg.d_algebra import (
    DValue,
    FIVE_X,
    from_logic,
    is_definite,
    is_faulted,
    evaluate_cell,
)
from repro.faults.fault import StuckAtFault
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.module import Instance, Netlist, Pin
from repro.netlist.traversal import topological_instances


class PodemStatus(Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    status: PodemStatus
    fault: StuckAtFault
    pattern: Dict[str, int] = field(default_factory=dict)
    backtracks: int = 0
    decisions: int = 0


# Gate families used by the backtrace heuristic: (controlling value, inversion).
_FAMILY_PROPS = {
    "AND": (LOGIC_0, False),
    "NAND": (LOGIC_0, True),
    "OR": (LOGIC_1, False),
    "NOR": (LOGIC_1, True),
    "BUF": (None, False),
    "INV": (None, True),
}


def _family(cell_name: str) -> str:
    return cell_name.rstrip("0123456789")


class Podem:
    """Single-fault PODEM ATPG on the combinational view of a netlist.

    The view is constant-aware: flip-flop outputs frozen by the circuit
    manipulation (directly tied, or held by a tied reset/enable — see
    :func:`repro.atpg.implication.sequential_implied_constants`) are treated
    as constants rather than controllable points, and flip-flop inputs whose
    capture path is blocked by such constants are not observation points.
    This keeps PODEM's verdicts consistent with the tied-value analysis the
    identification flow is built on.
    """

    def __init__(self, netlist: Netlist, backtrack_limit: int = 200,
                 implication: Optional["ImplicationEngine"] = None) -> None:
        from repro.atpg.implication import ImplicationEngine

        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.order = topological_instances(netlist)
        self.implication = implication or ImplicationEngine(netlist)

        # Flip-flop output nets frozen to a mission constant.
        self.fixed_state: Dict[str, int] = {}
        for inst in netlist.sequential_instances():
            for pin in inst.output_pins():
                if pin.net is None:
                    continue
                constant = self.implication.constant_of(pin.net.name)
                if constant is not None and pin.net.tied is None:
                    self.fixed_state[pin.net.name] = constant

        self.controllable: Set[str] = set()
        for port in netlist.input_ports():
            if netlist.net(port).tied is None:
                self.controllable.add(port)
        for inst in netlist.sequential_instances():
            for pin in inst.output_pins():
                if (pin.net is not None and pin.net.tied is None
                        and pin.net.name not in self.fixed_state):
                    self.controllable.add(pin.net.name)

        self.observation: Set[str] = set(netlist.observable_output_ports())
        for inst in netlist.sequential_instances():
            for pin in inst.input_pins():
                if pin.net is None:
                    continue
                if self.implication.propagation_blocked(inst, pin.port):
                    continue
                self.observation.add(pin.net.name)

    # ------------------------------------------------------------------ #
    # five-valued simulation with fault injection
    # ------------------------------------------------------------------ #
    def _simulate(self, assignments: Dict[str, int],
                  fault: StuckAtFault) -> Dict[str, DValue]:
        values: Dict[str, DValue] = {}
        for name, net in self.netlist.nets.items():
            if net.tied is not None:
                values[name] = from_logic(net.tied)
            elif name in self.fixed_state:
                values[name] = from_logic(self.fixed_state[name])
            elif name in assignments:
                values[name] = from_logic(assignments[name])
            else:
                values[name] = FIVE_X

        stem_net: Optional[str] = None
        branch_pin: Optional[Pin] = None
        if fault.is_port_fault:
            stem_net = fault.site if fault.site in self.netlist.nets else None
        else:
            pin = self.netlist.pin_by_name(fault.site)
            if pin.net is not None:
                if pin.is_output:
                    stem_net = pin.net.name
                else:
                    branch_pin = pin

        def inject_stem(net_name: str) -> None:
            good = values[net_name][0]
            values[net_name] = (good, fault.value)

        if stem_net is not None:
            inject_stem(stem_net)

        for inst in self.order:
            pin_values: Dict[str, DValue] = {}
            for pin in inst.input_pins():
                value = values[pin.net.name] if pin.net is not None else FIVE_X
                if branch_pin is not None and pin is branch_pin:
                    value = (value[0], fault.value)
                pin_values[pin.port] = value
            outputs = evaluate_cell(inst.cell, pin_values)
            for out_pin in inst.output_pins():
                if out_pin.net is None:
                    continue
                net = out_pin.net
                if net.tied is not None:
                    continue
                values[net.name] = outputs.get(out_pin.port, FIVE_X)
                if stem_net is not None and net.name == stem_net:
                    inject_stem(net.name)
        return values

    # ------------------------------------------------------------------ #
    # PODEM machinery
    # ------------------------------------------------------------------ #
    def _fault_excitation_net(self, fault: StuckAtFault) -> Optional[str]:
        """Net whose good value must be the opposite of the stuck value."""
        if fault.is_port_fault:
            return fault.site if fault.site in self.netlist.nets else None
        pin = self.netlist.pin_by_name(fault.site)
        return pin.net.name if pin.net is not None else None

    def _detected(self, values: Dict[str, DValue]) -> bool:
        return any(is_faulted(values[n]) for n in self.observation if n in values)

    def _branch_pin(self, fault: StuckAtFault) -> Optional[Pin]:
        """The faulted instance input pin, for branch (input-pin) faults."""
        if fault.is_port_fault:
            return None
        pin = self.netlist.pin_by_name(fault.site)
        return pin if (pin.net is not None and pin.is_input) else None

    def _d_frontier(self, values: Dict[str, DValue],
                    fault: StuckAtFault) -> List[Instance]:
        branch_pin = self._branch_pin(fault)
        frontier = []
        for inst in self.order:
            out_ok = False
            for out_pin in inst.output_pins():
                if out_pin.net is None:
                    continue
                v = values[out_pin.net.name]
                if not is_faulted(v) and not is_definite(v):
                    out_ok = True
            if not out_ok:
                continue
            for pin in inst.input_pins():
                if pin.net is None:
                    continue
                pin_value = values[pin.net.name]
                if branch_pin is not None and pin is branch_pin:
                    # A branch fault perturbs the pin, not the net: the pin is
                    # effectively faulted once its net carries the opposite of
                    # the stuck value.
                    pin_value = (pin_value[0], fault.value)
                if is_faulted(pin_value):
                    frontier.append(inst)
                    break
        return frontier

    def _x_path_exists(self, values: Dict[str, DValue],
                       frontier: List[Instance]) -> bool:
        """Is there a path of X-valued nets from the D-frontier to an observation point?"""
        if not frontier:
            return False
        work: List[str] = []
        seen: Set[str] = set()
        for inst in frontier:
            for pin in inst.output_pins():
                if pin.net is not None:
                    work.append(pin.net.name)
        while work:
            net_name = work.pop()
            if net_name in seen:
                continue
            seen.add(net_name)
            value = values.get(net_name, FIVE_X)
            if is_definite(value) and not is_faulted(value):
                continue
            if net_name in self.observation:
                return True
            net = self.netlist.nets[net_name]
            for load in net.loads:
                for out_pin in load.instance.output_pins():
                    if out_pin.net is not None:
                        work.append(out_pin.net.name)
        return False

    def _objective(self, fault: StuckAtFault, values: Dict[str, DValue],
                   frontier: List[Instance]) -> Optional[Tuple[str, int]]:
        """Return (net, value) to pursue next, or None at a dead end."""
        excite_net = self._fault_excitation_net(fault)
        if excite_net is None:
            return None
        good = values[excite_net][0]
        wanted = LOGIC_1 - fault.value
        if good == LOGIC_X:
            return (excite_net, wanted)
        if good == fault.value:
            return None  # cannot excite under current assignments
        # Fault excited: advance the D-frontier.
        for inst in frontier:
            family = _family(inst.cell.name)
            controlling, _ = _FAMILY_PROPS.get(family, (None, False))
            non_controlling = (LOGIC_1 - controlling) if controlling is not None else LOGIC_1
            for pin in inst.input_pins():
                if pin.net is None:
                    continue
                if values[pin.net.name][0] == LOGIC_X:
                    return (pin.net.name, non_controlling)
        return None

    def _backtrace(self, net_name: str, value: int,
                   values: Dict[str, DValue]) -> Optional[Tuple[str, int]]:
        """Walk backwards from an objective to an unassigned controllable net."""
        current_net = net_name
        current_value = value
        for _ in range(len(self.netlist.nets) + len(self.netlist.instances) + 1):
            if current_net in self.controllable:
                # Assignable as long as the good machine has not fixed it yet
                # (the faulty component may already be pinned at a fault site).
                if values[current_net][0] == LOGIC_X:
                    return (current_net, current_value)
                return None
            net = self.netlist.nets.get(current_net)
            if net is None or net.driver is None:
                return None
            inst = net.driver.instance
            if inst.is_sequential:
                return None
            family = _family(inst.cell.name)
            controlling, inversion = _FAMILY_PROPS.get(family, (None, False))
            target = (LOGIC_1 - current_value) if inversion else current_value

            chosen: Optional[Pin] = None
            for pin in inst.input_pins():
                if pin.net is not None and values[pin.net.name][0] == LOGIC_X:
                    chosen = pin
                    break
            if chosen is None:
                return None
            current_net = chosen.net.name
            current_value = target
        return None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(self, fault: StuckAtFault) -> PodemResult:
        """Attempt to generate a test for ``fault``."""
        excite_net = self._fault_excitation_net(fault)
        if excite_net is None:
            # A fault on an unconnected pin can never be excited or observed.
            return PodemResult(PodemStatus.UNTESTABLE, fault)
        tied = self.netlist.nets[excite_net].tied
        if tied is not None and tied == fault.value:
            return PodemResult(PodemStatus.UNTESTABLE, fault)

        assignments: Dict[str, int] = {}
        # Decision stack entries: (net, value, alternative_tried)
        stack: List[List] = []
        backtracks = 0
        decisions = 0

        while True:
            values = self._simulate(assignments, fault)
            if self._detected(values):
                return PodemResult(PodemStatus.DETECTED, fault,
                                   pattern=dict(assignments),
                                   backtracks=backtracks, decisions=decisions)

            frontier = self._d_frontier(values, fault)
            excited = values[excite_net][0] == LOGIC_1 - fault.value
            dead_end = False
            objective = None

            if excited and not frontier:
                # The fault is excited but its effect can no longer advance
                # (every gate it reaches already has a definite output).
                dead_end = True
            elif excited and frontier and not self._x_path_exists(values, frontier):
                dead_end = True
            else:
                objective = self._objective(fault, values, frontier)
                if objective is None:
                    dead_end = True

            if not dead_end:
                assert objective is not None
                pi = self._backtrace(objective[0], objective[1], values)
                if pi is None:
                    dead_end = True
                else:
                    net, val = pi
                    assignments[net] = val
                    stack.append([net, val, False])
                    decisions += 1
                    continue

            # Backtrack.
            while stack:
                net, val, tried = stack[-1]
                if not tried:
                    stack[-1][2] = True
                    assignments[net] = LOGIC_1 - val
                    backtracks += 1
                    break
                stack.pop()
                assignments.pop(net, None)
            else:
                return PodemResult(PodemStatus.UNTESTABLE, fault,
                                   backtracks=backtracks, decisions=decisions)

            if backtracks > self.backtrack_limit:
                return PodemResult(PodemStatus.ABORTED, fault,
                                   backtracks=backtracks, decisions=decisions)
