"""Five-valued D-calculus built on top of the cell library's 3-valued models.

A five-valued value is represented as a pair ``(good, faulty)`` where each
component is one of ``LOGIC_0 / LOGIC_1 / LOGIC_X``:

* ``(0, 0)`` → 0, ``(1, 1)`` → 1, ``(X, X)`` → X,
* ``(1, 0)`` → D  (good machine 1, faulty machine 0),
* ``(0, 1)`` → D̄.

Because every cell model in :mod:`repro.netlist.cells` is a pure 3-valued
function, five-valued evaluation is simply componentwise evaluation on the
good and faulty parts — no per-cell D tables are needed.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.netlist.cells import Cell, LOGIC_0, LOGIC_1, LOGIC_X

DValue = Tuple[int, int]

FIVE_ZERO: DValue = (LOGIC_0, LOGIC_0)
FIVE_ONE: DValue = (LOGIC_1, LOGIC_1)
FIVE_X: DValue = (LOGIC_X, LOGIC_X)
FIVE_D: DValue = (LOGIC_1, LOGIC_0)
FIVE_DBAR: DValue = (LOGIC_0, LOGIC_1)


def is_faulted(value: DValue) -> bool:
    """True for D or D̄ (good and faulty machines differ and are definite)."""
    good, faulty = value
    return good != LOGIC_X and faulty != LOGIC_X and good != faulty


def is_definite(value: DValue) -> bool:
    """True when both components are non-X."""
    return value[0] != LOGIC_X and value[1] != LOGIC_X


def is_unknown(value: DValue) -> bool:
    return value[0] == LOGIC_X or value[1] == LOGIC_X


def from_logic(value: int) -> DValue:
    """Lift a 3-valued value into the D-calculus (good == faulty)."""
    return (value, value)


def label(value: DValue) -> str:
    """Human-readable label: 0, 1, X, D, D' or g/f for partially-known values."""
    if value == FIVE_ZERO:
        return "0"
    if value == FIVE_ONE:
        return "1"
    if value == FIVE_D:
        return "D"
    if value == FIVE_DBAR:
        return "D'"
    if value == FIVE_X:
        return "X"
    names = {LOGIC_0: "0", LOGIC_1: "1", LOGIC_X: "X"}
    return f"{names[value[0]]}/{names[value[1]]}"


def evaluate_cell(cell: Cell, inputs: Mapping[str, DValue]) -> Dict[str, DValue]:
    """Evaluate a cell over five-valued inputs componentwise."""
    good_in = {pin: v[0] for pin, v in inputs.items()}
    faulty_in = {pin: v[1] for pin, v in inputs.items()}
    good_out = cell.evaluate(good_in)
    faulty_out = cell.evaluate(faulty_in)
    return {pin: (good_out[pin], faulty_out[pin]) for pin in good_out}
