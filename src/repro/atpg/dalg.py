"""Five-valued D-algorithm over the compiled IR (the hard-proof tier).

PODEM only decides primary inputs, which keeps every step cheap but makes
deep reconvergent justification expensive: the search rediscovers internal
implications one input cube at a time and gives up (AU) at the backtrack
limit.  The D-algorithm decides *internal* nets instead, with the classic
bookkeeping:

J-frontier
    Nets carrying a required good-machine value whose driving op still
    computes X — the justification obligations.  A choice point enumerates
    every input combination of the driver that produces the required value.

D-frontier
    Ops with a fault effect (good ≠ faulty, both definite) on an input and
    an undetermined output — the propagation candidates.  A choice point
    enumerates the good-machine values of the gate's undetermined inputs
    (the all-non-controlling cube first, the classic D-drive heuristic,
    then the remaining combinations so reconvergent multi-path
    sensitization is never missed).

Because every choice point enumerates *all* consistent alternatives and a
conflict only prunes branches no completion could satisfy, exhausting the
decision space is a structural untestability proof: :class:`DAlg` returns
``UNTESTABLE`` exactly when no test exists under the engine's
combinational view.  That is what lets the ``dalg`` portfolio backend
(:mod:`repro.atpg.portfolio`) escalate faults PODEM aborted and turn AU
into proven UU — or DT, in which case the extracted primary-input cube is
re-verified by five-valued simulation before the verdict is returned.

The machine model (controllable points, observation points, constant-aware
view, five-valued simulation, launch justification for two-pattern faults)
is inherited from :class:`~repro.atpg.podem.Podem`, so verdicts from both
engines are directly comparable.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.atpg.podem import (_FAMILY_PROPS, _family, Podem, PodemResult,
                              PodemStatus)
from repro.faults.models import Fault
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.module import Netlist
from repro.simulation.simulator import scalar3_program

#: A choice point: [alternatives, next alternative index, forced keys added
#: by the currently-applied alternative].
_Choice = List


class DAlg(Podem):
    """Single-fault D-algorithm on the combinational view of a netlist.

    Drop-in alternative to :class:`Podem` (same constructor, same
    :meth:`generate` contract, same :class:`PodemResult`), intended as the
    escalation tier of the ATPG portfolio: slower per decision, but its
    exhaustion verdicts are complete redundancy proofs.
    """

    def __init__(self, netlist: Netlist, backtrack_limit: int = 200,
                 implication=None, static=None) -> None:
        super().__init__(netlist, backtrack_limit, implication, static)
        self._scalar_program = scalar3_program(self.compiled)
        self._sorted_controllables = sorted(self._controllable_ids)

    # ------------------------------------------------------------------ #
    # fault cone (forced internal values constrain the good machine only;
    # inside the cone the faulty value is left to forward propagation)
    # ------------------------------------------------------------------ #
    def _fault_cone(self, stem: Optional[int], branch_op: int) -> Set[int]:
        compiled = self.compiled
        work: List[int] = []
        if stem is not None:
            work.append(stem)
        if branch_op >= 0:
            work.extend(nid for nid in compiled.op_fanout[branch_op]
                        if nid >= 0)
        cone: Set[int] = set()
        while work:
            nid = work.pop()
            if nid in cone:
                continue
            cone.add(nid)
            work.extend(compiled.net_succ[nid])
        return cone

    # ------------------------------------------------------------------ #
    # forward propagation of a partial assignment with requirements
    # ------------------------------------------------------------------ #
    def _propagate(self, forced: Dict[int, int], stem: Optional[int],
                   branch_op: int, branch_pos: int, fault_value: int,
                   cone: Set[int]
                   ) -> Optional[Tuple[List[int], List[int], List[int]]]:
        """Levelized five-valued pass under ``forced`` good requirements.

        Returns ``(good, faulty, j_frontier)`` or ``None`` on a conflict (a
        driver computes a definite value contradicting a requirement, or a
        requirement contradicts a tied/fixed constant).  A conflict only
        prunes assignments no completion could satisfy — definite values of
        the three-valued algebra are monotone under information refinement
        — which is what keeps exhaustion a proof.
        """
        compiled = self.compiled
        n = compiled.n_nets
        good = [LOGIC_X] * n
        faulty = [LOGIC_X] * n
        for nid, t in enumerate(compiled.tied):
            if t is not None:
                good[nid] = t
                faulty[nid] = t
        for nid, value in self._fixed_ids.items():
            good[nid] = value
            faulty[nid] = value
        for nid, value in forced.items():
            current = good[nid]
            if current != LOGIC_X and current != value:
                return None
            good[nid] = value
            if nid not in cone:
                # Outside the fault cone both machines agree by definition.
                faulty[nid] = value
        if stem is not None:
            faulty[stem] = fault_value

        op_fanin = compiled.op_fanin
        op_fanout = compiled.op_fanout
        tied = compiled.tied
        j_frontier: List[int] = []
        for i, fn in enumerate(self._scalar_program):
            good_args = []
            faulty_args = []
            for pos, fid in enumerate(op_fanin[i]):
                if fid < 0:
                    good_args.append(LOGIC_X)
                    faulty_args.append(LOGIC_X)
                    continue
                good_args.append(good[fid])
                faulty_args.append(fault_value
                                   if (i == branch_op and pos == branch_pos)
                                   else faulty[fid])
            good_out = fn(*good_args)
            faulty_out = fn(*faulty_args)
            for pos, fid in enumerate(op_fanout[i]):
                if fid < 0 or tied[fid] is not None:
                    continue
                gv = good_out[pos]
                fv = fault_value if fid == stem else faulty_out[pos]
                required = forced.get(fid)
                if required is None:
                    good[fid] = gv
                    faulty[fid] = fv
                    continue
                if gv != LOGIC_X and gv != required:
                    return None
                if gv == LOGIC_X:
                    j_frontier.append(fid)
                if fid in cone:
                    faulty[fid] = fv
        return good, faulty, j_frontier

    # ------------------------------------------------------------------ #
    # choice-point alternatives
    # ------------------------------------------------------------------ #
    def _justify_alternatives(self, nid: int, want: int,
                              good: List[int]) -> List[Dict[int, int]]:
        """Every input combination making ``nid``'s driver output ``want``.

        Enumerates the undetermined (good-X) inputs of the driving op over
        {0, 1} — controlling value of the gate family first — and keeps the
        combinations whose exact three-valued evaluation yields ``want`` on
        the driven output position.  Complete by construction: a detecting
        completion assigns those inputs *some* definite values, and that
        combination is in the list.
        """
        compiled = self.compiled
        op = compiled.net_driver_op[nid]
        if op < 0:
            return []
        out_pos = -1
        for pos, out in enumerate(compiled.op_fanout[op]):
            if out == nid:
                out_pos = pos
                break
        if out_pos < 0:
            return []
        fanin = compiled.op_fanin[op]
        x_nids = sorted({fid for fid in fanin
                         if fid >= 0 and good[fid] == LOGIC_X})
        if not x_nids:
            return []
        family = _family(compiled.op_cell[op].name)
        controlling, _ = _FAMILY_PROPS.get(family, (None, False))
        order = ((controlling, LOGIC_1 - controlling)
                 if controlling is not None else (LOGIC_0, LOGIC_1))
        fn = self._scalar_program[op]
        alternatives: List[Dict[int, int]] = []
        for combo in itertools.product(order, repeat=len(x_nids)):
            candidate = dict(zip(x_nids, combo))
            args = []
            for fid in fanin:
                if fid < 0:
                    args.append(LOGIC_X)
                else:
                    value = candidate.get(fid)
                    args.append(good[fid] if value is None else value)
            if fn(*args)[out_pos] == want:
                alternatives.append(candidate)
        return alternatives

    def _drive_alternatives(self, op: int,
                            good: List[int]) -> List[Dict[int, int]]:
        """Good-value combinations of a D-frontier gate's undetermined
        inputs, all-non-controlling first (the classic D-drive cube), then
        every other combination so reconvergent sensitization — a side
        input that itself must carry a fault effect — stays reachable."""
        compiled = self.compiled
        x_nids = sorted({fid for fid in compiled.op_fanin[op]
                         if fid >= 0 and good[fid] == LOGIC_X})
        if not x_nids:
            return []
        family = _family(compiled.op_cell[op].name)
        controlling, _ = _FAMILY_PROPS.get(family, (None, False))
        first = (LOGIC_1 - controlling) if controlling is not None else LOGIC_1
        order = (first, LOGIC_1 - first)
        return [dict(zip(x_nids, combo))
                for combo in itertools.product(order, repeat=len(x_nids))]

    @staticmethod
    def _apply_choice(choice: _Choice, forced: Dict[int, int]) -> bool:
        """Apply the next untried alternative of a choice point, skipping
        alternatives that contradict the current requirements."""
        alternatives, _, _ = choice
        while choice[1] < len(alternatives):
            alternative = alternatives[choice[1]]
            choice[1] += 1
            added: List[int] = []
            consistent = True
            for nid in sorted(alternative):
                value = alternative[nid]
                current = forced.get(nid)
                if current is not None:
                    if current != value:
                        consistent = False
                        break
                    continue
                forced[nid] = value
                added.append(nid)
            if consistent:
                choice[2] = added
                return True
            for nid in added:
                del forced[nid]
        return False

    # ------------------------------------------------------------------ #
    # the search (replaces Podem's input-cube enumeration)
    # ------------------------------------------------------------------ #
    def _generate_single(self, fault: Fault, fault_value: int) -> PodemResult:
        compiled = self.compiled
        excite = self._fault_excitation_id(fault)
        if excite is None:
            return PodemResult(PodemStatus.UNTESTABLE, fault)
        tied = compiled.tied[excite]
        if tied is not None and tied == fault_value:
            return PodemResult(PodemStatus.UNTESTABLE, fault)
        if self.static is not None:
            if self.static.necessary(excite, LOGIC_1 - fault_value) is None:
                return PodemResult(PodemStatus.UNTESTABLE, fault)

        stem, branch_op, branch_pos = self._fault_refs(fault)
        cone = self._fault_cone(stem, branch_op)
        names = compiled.net_names

        forced: Dict[int, int] = {}
        if tied is None:
            fixed = self._fixed_ids.get(excite)
            if fixed is not None:
                if fixed == fault_value:
                    return PodemResult(PodemStatus.UNTESTABLE, fault)
            else:
                forced[excite] = LOGIC_1 - fault_value

        stack: List[_Choice] = []
        backtracks = 0
        decisions = 0

        while True:
            state = self._propagate(forced, stem, branch_op, branch_pos,
                                    fault_value, cone)
            alternatives: List[Dict[int, int]] = []
            failed = state is None
            if not failed:
                good, faulty, j_frontier = state
                detected = self._detected(good, faulty)
                if detected and not j_frontier:
                    pattern_ids = {nid: value
                                   for nid, value in forced.items()
                                   if nid in self._controllable_ids}
                    vgood, vfaulty = self._simulate(pattern_ids, stem,
                                                    branch_op, branch_pos,
                                                    fault_value)
                    if self._detected(vgood, vfaulty):
                        pattern = {names[nid]: value for nid, value
                                   in sorted(pattern_ids.items())}
                        return PodemResult(PodemStatus.DETECTED, fault,
                                           pattern=pattern,
                                           backtracks=backtracks,
                                           decisions=decisions)
                    # The extracted cube did not verify: treat the branch
                    # as failed rather than ever returning an unverified DT.
                    failed = True
                elif detected:
                    alternatives = self._justify_alternatives(
                        j_frontier[0], forced[j_frontier[0]], good)
                else:
                    frontier = self._d_frontier(good, faulty, branch_op,
                                                branch_pos, fault_value)
                    if not frontier or not self._x_path_exists(good, faulty,
                                                               frontier):
                        failed = True
                    else:
                        for op in frontier:
                            alternatives = self._drive_alternatives(op, good)
                            if alternatives:
                                break
                        if not alternatives and j_frontier:
                            alternatives = self._justify_alternatives(
                                j_frontier[0], forced[j_frontier[0]], good)
                        if not alternatives:
                            # Structured moves exhausted: branch on the
                            # first free primary input (trivially complete).
                            for nid in self._sorted_controllables:
                                if good[nid] == LOGIC_X:
                                    alternatives = [{nid: LOGIC_1},
                                                    {nid: LOGIC_0}]
                                    break

            if not failed and alternatives:
                choice: _Choice = [alternatives, 0, []]
                if self._apply_choice(choice, forced):
                    stack.append(choice)
                    decisions += 1
                    continue
                failed = True

            # Backtrack: unwind to the deepest choice point with an
            # untried alternative.
            while stack:
                choice = stack[-1]
                for nid in choice[2]:
                    forced.pop(nid, None)
                choice[2] = []
                if self._apply_choice(choice, forced):
                    backtracks += 1
                    decisions += 1
                    break
                stack.pop()
            else:
                return PodemResult(PodemStatus.UNTESTABLE, fault,
                                   backtracks=backtracks,
                                   decisions=decisions)

            if backtracks > self.backtrack_limit:
                return PodemResult(PodemStatus.ABORTED, fault,
                                   backtracks=backtracks,
                                   decisions=decisions)
