"""The ATPG portfolio: pluggable test-generation backends + compaction.

One PODEM engine stopped being the right answer for every fault: easy
faults want the cheap classic search, hard faults want randomized restarts
that sidestep a bad early decision, and aborted faults want a complete
(if slower) prover that can turn AU into a real verdict.  This module
packages those strategies behind one seam:

:class:`AtpgBackend`
    The protocol a strategy implements: ``start(netlist, ...)`` returns a
    per-run generator with ``generate(fault)`` (primary search) and
    ``escalate(fault)`` (optional second tier for aborted faults).

:data:`ATPG_BACKENDS`
    The process-global :class:`~repro.core.registry.Registry` holding the
    built-in backends —

    ``podem``
        the classic engine (:class:`~repro.atpg.podem.Podem`), unchanged:
        the serial reference every other backend is checked against.
    ``podem-restart``
        :class:`RestartPodem` — staged backtrack budgets with a
        deterministically re-seeded randomized decision ordering per
        attempt.  Each fault's RNG stream derives from
        ``(seed, fault, attempt)`` alone, so verdicts are identical no
        matter how the fault list is sharded across workers.
    ``dalg``
        PODEM primary plus a :class:`~repro.atpg.dalg.DAlg` escalation
        tier that re-attacks aborted faults with the five-valued
        D-algorithm, turning AU into proven UU (or DT) where possible.

Every backend is *per-fault deterministic*: the verdict for a fault
depends only on (netlist, fault, seed), never on batch order — the
invariant that keeps serial, thread- and process-sharded classification
byte-identical.

:func:`compact_patterns` is the portfolio's second half: the patterns the
search emits are fault-simulated through the kernel layer as they are
produced, merged where compatible cubes provably keep their union of
detections, dropped when covered, and re-ordered steepest-coverage-first —
so pattern counts drop as coverage rises.  The compaction trace lands in
the classification report.
"""

from __future__ import annotations

import random
import zlib
from typing import (Any, Dict, Iterable, List, Optional, Protocol, Sequence,
                    Set, Tuple, runtime_checkable)

from repro.atpg.dalg import DAlg
from repro.atpg.podem import (_FAMILY_PROPS, _family, Podem, PodemResult,
                              PodemStatus)
from repro.core.registry import Registry
from repro.faults.models import Fault
from repro.netlist.cells import LOGIC_1, LOGIC_X
from repro.netlist.module import Netlist
from repro.simulation.parallel import ParallelPatternSimulator
from repro.utils.bitvec import mask

#: Default backend name (the serial reference engine).
DEFAULT_ATPG_BACKEND = "podem"

#: Default seed for randomized backends, matching the engine's random-phase
#: seed (the paper's year).
DEFAULT_ATPG_SEED = 2013

#: Escalation tier budget multiplier (the D-algorithm gets more rope than
#: the primary search that already gave up).
_ESCALATION_BUDGET_FACTOR = 4

#: Restart schedule: backtrack-budget divisors per attempt.  Attempt 0 is
#: the classic search on the full limit (so every fault the reference
#: engine resolves costs exactly the same here); aborted faults then get
#: randomized retries on half and quarter budgets — cheap lottery tickets
#: against an unlucky early decision.
_RESTART_BUDGET_DIVISORS = (1, 2, 4)


class AtpgRun(Protocol):
    """A backend instance bound to one netlist (one classification run)."""

    def generate(self, fault: Fault) -> PodemResult:
        """Primary search for one fault."""
        ...

    def escalate(self, fault: Fault) -> Optional[PodemResult]:
        """Second-tier re-attack of an aborted fault; ``None`` means the
        escalation could not improve on the primary verdict."""
        ...

    @property
    def learned_skips(self) -> int:
        """Decision branches skipped via learned implications so far."""
        ...


@runtime_checkable
class AtpgBackend(Protocol):
    """Structural protocol every portfolio backend satisfies."""

    #: Registry name (``repro analyze --atpg-backend <name>``).
    name: str
    #: One-line description for ``repro backends``.
    description: str
    #: Whether :meth:`AtpgRun.escalate` can improve aborted faults — when
    #: true the classifier runs a second pass over the merged abort
    #: frontier.
    escalates: bool

    def start(self, netlist: Netlist, *, backtrack_limit: int = 200,
              static=None, seed: int = DEFAULT_ATPG_SEED) -> AtpgRun:
        """Bind the backend to a netlist for one classification run."""
        ...


# --------------------------------------------------------------------- #
# randomized-restart PODEM
# --------------------------------------------------------------------- #
def _attempt_seed(seed: int, fault: Fault, attempt: int) -> int:
    """Derive the RNG seed of one restart attempt from the run seed and the
    fault identity alone (CRC32 of a stable text form, so the stream is
    identical across processes, platforms and shard assignments)."""
    return zlib.crc32(f"{seed}:{fault!r}:{attempt}".encode("utf-8"))


class RestartPodem(Podem):
    """PODEM with staged backtrack budgets and randomized restarts.

    The classic search wastes its whole budget refuting one unlucky early
    decision.  This variant runs up to ``len(_RESTART_BUDGET_DIVISORS)``
    attempts per fault.  Attempt 0 *is* the classic SCOAP-guided search on
    the full backtrack limit — every fault the reference engine resolves
    gets the identical verdict at the identical cost.  Only aborted faults
    go further: each retry re-seeds a per-fault RNG and both the objective
    selection and the backtrace walk pick uniformly among the
    otherwise-equivalent candidates, so the retries explore the decision
    tree from different corners on shrinking budgets (half, then a
    quarter of the limit) — cheap second chances against an unlucky early
    decision, which is where the classic search loses its budget.

    Soundness is untouched: ``DETECTED`` is established by five-valued
    simulation exactly as in the base class, and ``UNTESTABLE`` means the
    decision space was *exhausted* — a verdict independent of the order in
    which it was explored.
    """

    def __init__(self, netlist: Netlist, backtrack_limit: int = 200,
                 implication=None, static=None,
                 seed: int = DEFAULT_ATPG_SEED) -> None:
        super().__init__(netlist, backtrack_limit, implication, static)
        self.seed = seed
        self._base_limit = backtrack_limit
        self._rng = random.Random(seed)
        self._randomized = False

    def generate(self, fault: Fault) -> PodemResult:
        backtracks = 0
        decisions = 0
        result: Optional[PodemResult] = None
        for attempt, divisor in enumerate(_RESTART_BUDGET_DIVISORS):
            self.backtrack_limit = max(1, self._base_limit // divisor)
            self._randomized = attempt > 0
            self._rng = random.Random(_attempt_seed(self.seed, fault,
                                                    attempt))
            try:
                result = super().generate(fault)
            finally:
                self.backtrack_limit = self._base_limit
                self._randomized = False
            backtracks += result.backtracks
            decisions += result.decisions
            if result.status is not PodemStatus.ABORTED:
                break
        assert result is not None
        return PodemResult(result.status, fault, pattern=result.pattern,
                           init_pattern=result.init_pattern,
                           backtracks=backtracks, decisions=decisions)

    def _objective(self, fault_value: int, excite: int,
                   good: List[int], frontier: List[int]
                   ) -> Optional[Tuple[int, int]]:
        if not self._randomized:
            return super()._objective(fault_value, excite, good, frontier)
        compiled = self.compiled
        g = good[excite]
        wanted = LOGIC_1 - fault_value
        if g == LOGIC_X:
            return (excite, wanted)
        if g == fault_value:
            return None
        candidates: List[Tuple[int, int]] = []
        for op in frontier:
            family = _family(compiled.op_cell[op].name)
            controlling, _ = _FAMILY_PROPS.get(family, (None, False))
            non_controlling = (LOGIC_1 - controlling
                               if controlling is not None else LOGIC_1)
            for nid in compiled.op_fanin[op]:
                if nid >= 0 and good[nid] == LOGIC_X:
                    candidates.append((nid, non_controlling))
        if not candidates:
            return None
        return candidates[self._rng.randrange(len(candidates))]

    def _backtrace(self, nid: int, value: int,
                   good: List[int]) -> Optional[Tuple[int, int]]:
        if not self._randomized:
            return super()._backtrace(nid, value, good)
        compiled = self.compiled
        current = nid
        current_value = value
        limit = (compiled.n_nets + compiled.n_ops
                 + len(compiled.seq_instances) + 1)
        for _ in range(limit):
            if current in self._controllable_ids:
                if good[current] == LOGIC_X:
                    return (current, current_value)
                return None
            op = compiled.net_driver_op[current]
            if op < 0:
                return None
            family = _family(compiled.op_cell[op].name)
            controlling, inversion = _FAMILY_PROPS.get(family, (None, False))
            target = (LOGIC_1 - current_value) if inversion else current_value
            candidates = [fanin_nid for fanin_nid in compiled.op_fanin[op]
                          if fanin_nid >= 0 and good[fanin_nid] == LOGIC_X]
            if not candidates:
                return None
            current = candidates[self._rng.randrange(len(candidates))]
            current_value = target
        return None


# --------------------------------------------------------------------- #
# per-run generator wrappers
# --------------------------------------------------------------------- #
class _GeneratorRun:
    """AtpgRun over a single generator with no escalation tier."""

    def __init__(self, generator: Podem) -> None:
        self.generator = generator

    def generate(self, fault: Fault) -> PodemResult:
        return self.generator.generate(fault)

    def escalate(self, fault: Fault) -> Optional[PodemResult]:
        return None

    @property
    def learned_skips(self) -> int:
        return self.generator.learned_skips


class _DalgRun:
    """PODEM primary with a lazily-built D-algorithm escalation tier."""

    def __init__(self, netlist: Netlist, backtrack_limit: int,
                 static) -> None:
        self.generator = Podem(netlist, backtrack_limit=backtrack_limit,
                               static=static)
        self._netlist = netlist
        self._limit = backtrack_limit
        self._static = static
        self._dalg: Optional[DAlg] = None

    def generate(self, fault: Fault) -> PodemResult:
        return self.generator.generate(fault)

    def escalate(self, fault: Fault) -> Optional[PodemResult]:
        if self._dalg is None:
            self._dalg = DAlg(
                self._netlist,
                backtrack_limit=self._limit * _ESCALATION_BUDGET_FACTOR,
                static=self._static)
        result = self._dalg.generate(fault)
        if result.status is PodemStatus.ABORTED:
            return None
        return result

    @property
    def learned_skips(self) -> int:
        return self.generator.learned_skips


# --------------------------------------------------------------------- #
# the backends
# --------------------------------------------------------------------- #
class PodemBackend:
    """The classic engine, unchanged — the serial reference."""

    name = "podem"
    description = "classic PODEM search (the reference engine)"
    escalates = False

    def start(self, netlist: Netlist, *, backtrack_limit: int = 200,
              static=None, seed: int = DEFAULT_ATPG_SEED) -> AtpgRun:
        return _GeneratorRun(Podem(netlist, backtrack_limit=backtrack_limit,
                                   static=static))


class RestartPodemBackend:
    """Randomized-restart PODEM with staged backtrack budgets."""

    name = "podem-restart"
    description = ("PODEM with staged backtrack budgets and seeded "
                   "randomized-restart decision ordering")
    escalates = False

    def start(self, netlist: Netlist, *, backtrack_limit: int = 200,
              static=None, seed: int = DEFAULT_ATPG_SEED) -> AtpgRun:
        return _GeneratorRun(RestartPodem(
            netlist, backtrack_limit=backtrack_limit, static=static,
            seed=seed))


class DalgBackend:
    """PODEM primary + five-valued D-algorithm escalation of aborts."""

    name = "dalg"
    description = ("PODEM primary search, aborted faults escalated to the "
                   "five-valued D-algorithm (AU becomes proven UU/DT where "
                   "the search completes)")
    escalates = True

    def start(self, netlist: Netlist, *, backtrack_limit: int = 200,
              static=None, seed: int = DEFAULT_ATPG_SEED) -> AtpgRun:
        return _DalgRun(netlist, backtrack_limit, static)


#: Backend name -> backend instance.
ATPG_BACKENDS: Registry = Registry("ATPG backend")


def register_atpg_backend(backend: AtpgBackend) -> AtpgBackend:
    """Register a portfolio backend under its ``name``."""
    return ATPG_BACKENDS.register(backend.name, backend)


register_atpg_backend(PodemBackend())
register_atpg_backend(RestartPodemBackend())
register_atpg_backend(DalgBackend())


def atpg_backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return ATPG_BACKENDS.names()


def resolve_atpg_backend(spec: Optional[object]) -> AtpgBackend:
    """Coerce a backend spec (name, backend instance or None) to a backend.

    ``None`` resolves to the default (``podem``); unknown names raise a
    :class:`ValueError` spelling the registered backends.
    """
    if spec is None:
        return ATPG_BACKENDS[DEFAULT_ATPG_BACKEND]
    if isinstance(spec, AtpgBackend) and not isinstance(spec, str):
        return spec
    return ATPG_BACKENDS.resolve(str(spec))


# --------------------------------------------------------------------- #
# dynamic pattern compaction
# --------------------------------------------------------------------- #
#: How many already-kept cubes a new pattern tries to merge into (a
#: deterministic sliding window keeps compaction linear-ish).
_MERGE_WINDOW = 8

#: Trace detail cap: per-pattern events beyond this are counted, not listed.
_TRACE_EVENT_CAP = 64


def _controllable_nets(netlist: Netlist) -> List[str]:
    """The fill points of a pattern: untied primary inputs and untied
    flip-flop outputs (same set the random phase drives)."""
    controllable: List[str] = []
    for port in netlist.input_ports():
        if netlist.net(port).tied is None:
            controllable.append(port)
    for inst in netlist.sequential_instances():
        for pin in inst.output_pins():
            if pin.net is not None and pin.net.tied is None:
                controllable.append(pin.net.name)
    return controllable


def _cubes_compatible(a: Dict[str, int], b: Dict[str, int]) -> bool:
    for net, value in b.items():
        if a.get(net, value) != value:
            return False
    return True


def compact_patterns(netlist: Netlist,
                     entries: Sequence[Tuple[Fault, Dict[str, int],
                                             Dict[str, int]]],
                     *, kernel: Optional[str] = None
                     ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Dynamically compact the patterns an ATPG run produced.

    ``entries`` is the canonical-order stream of ``(fault, pattern,
    init_pattern)`` triples the search emitted.  Each pattern is
    fault-simulated through the kernel layer as it arrives (0-filled at the
    unassigned controllable points):

    * a pattern detecting nothing still uncovered is **dropped**;
    * a single-frame pattern whose cube is compatible with a recently kept
      cube is **merged** — but only when simulation proves the merged cube
      still detects the union of both cubes' fault sets (merge-then-verify,
      so compaction can never lose coverage);
    * two-frame patterns (launch + capture) are simulated as width-2
      windows and kept or dropped, never merged across faults;
    * finally the kept patterns are re-ordered by detection count, so a
      consumer sweeping the list front-to-back sees coverage rise steepest
      first — pattern counts drop as coverage rises.

    Returns ``(compacted, trace)`` where each compacted entry carries the
    cube(s), the faults it is credited with and its detection count, and
    ``trace`` summarizes what compaction did (recorded in the report).
    Everything is measured with the same simulator, so the compacted set's
    simulated detections equal the original stream's by construction.
    """
    trace: Dict[str, Any] = {
        "generated": len(entries), "kept": 0, "merged": 0, "dropped": 0,
        "events": [], "events_truncated": 0,
    }
    if not entries:
        return [], trace

    sim = ParallelPatternSimulator(netlist, kernel=kernel)
    controllable = _controllable_nets(netlist)
    uncovered: Set[Fault] = {fault for fault, _, _ in entries}
    order_index = {fault: i for i, (fault, _, _) in enumerate(entries)}

    def detects(cube: Dict[str, int], init_cube: Optional[Dict[str, int]],
                candidates: Iterable[Fault]) -> Set[Fault]:
        candidates = set(candidates)
        if not candidates:
            return set()
        if init_cube is None:
            patterns = {net: cube.get(net, 0) & 1 for net in controllable}
            return sim.detected_faults(candidates, patterns, 1)
        word_mask = mask(2)
        patterns = {
            net: ((init_cube.get(net, 0) & 1)
                  | ((cube.get(net, 0) & 1) << 1)) & word_mask
            for net in controllable
        }
        return sim.detected_faults(candidates, patterns, 2)

    def note(action: str, fault: Fault, count: int) -> None:
        if len(trace["events"]) < _TRACE_EVENT_CAP:
            trace["events"].append(
                {"action": action, "fault": str(fault), "detects": count})
        else:
            trace["events_truncated"] += 1

    kept: List[Dict[str, Any]] = []
    for fault, pattern, init_pattern in entries:
        init_cube = dict(init_pattern) if init_pattern else None
        cube = dict(pattern)
        newly = detects(cube, init_cube, uncovered)
        if not newly:
            trace["dropped"] += 1
            note("drop", fault, 0)
            continue
        newly_ordered = sorted(newly, key=lambda f: order_index[f])
        merged = False
        if init_cube is None:
            for entry in kept[-_MERGE_WINDOW:]:
                if entry["init_pattern"]:
                    continue
                if not _cubes_compatible(entry["pattern"], cube):
                    continue
                candidate = dict(entry["pattern"])
                candidate.update(cube)
                union = set(entry["fault_objs"]) | newly
                if detects(candidate, None, union) >= union:
                    entry["pattern"] = candidate
                    entry["fault_objs"] = sorted(
                        union, key=lambda f: order_index[f])
                    merged = True
                    break
        if merged:
            trace["merged"] += 1
            note("merge", fault, len(newly))
        else:
            kept.append({"pattern": cube,
                         "init_pattern": dict(init_pattern or {}),
                         "fault_objs": newly_ordered})
            note("keep", fault, len(newly))
        uncovered -= newly

    # Steepest-coverage-first ordering (stable, so equal counts keep the
    # canonical production order).
    kept.sort(key=lambda entry: -len(entry["fault_objs"]))
    compacted: List[Dict[str, Any]] = []
    for entry in kept:
        compacted.append({
            "pattern": entry["pattern"],
            "init_pattern": entry["init_pattern"],
            "faults": [str(f) for f in entry["fault_objs"]],
            "detects": len(entry["fault_objs"]),
        })
    trace["kept"] = len(compacted)
    return compacted, trace


__all__ = [
    "ATPG_BACKENDS",
    "AtpgBackend",
    "AtpgRun",
    "DEFAULT_ATPG_BACKEND",
    "DEFAULT_ATPG_SEED",
    "DalgBackend",
    "PodemBackend",
    "RestartPodem",
    "RestartPodemBackend",
    "atpg_backend_names",
    "compact_patterns",
    "register_atpg_backend",
    "resolve_atpg_backend",
]
