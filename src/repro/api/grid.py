"""Scenario grids — declarative sweeps over SoC variants.

A :class:`ScenarioGrid` is a base :class:`~repro.soc.config.SoCConfig` plus
named *axes*, each a list of values.  Expansion takes the cartesian product
in deterministic order and yields labelled :class:`Scenario` points:

* config-level axes (``size``, ``scan``, ``debug``, ``memory_map``,
  ``cpu.<field>``, ...) are applied through
  :meth:`repro.soc.config.SoCConfig.with_axis`;
* the run-level ``effort`` axis selects the ATPG effort of the structural
  engine per scenario.

::

    grid = (ScenarioGrid("small")
            .axis("debug", [True, False])
            .axis("effort", ["tie", "random"]))
    for scenario in grid:          # 4 points
        print(scenario.label)

A grid with no axes is the degenerate single-point sweep of its base
configuration — useful because it makes ``Session.sweep`` a strict
generalisation of ``Session.analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.atpg.engine import AtpgEffort, resolve_effort
from repro.faults.models import resolve_fault_model
from repro.soc.config import SoCConfig, axis_value_label, expand_axes

#: The axes expanded at run level rather than into the SoC configuration:
#: the ATPG effort, the fault model, the static-prune knob, the simulation
#: kernel and the ATPG portfolio backend select *how* a scenario is
#: analyzed without changing the generated SoC.
RUN_AXES = ("effort", "fault_model", "static_prune", "kernel",
            "atpg_backend", "pool")


def _resolve_flag(name: str, value: object) -> bool:
    """Coerce a boolean axis value, accepting the CLI spellings.

    ``bool("off")`` is ``True`` — accepting raw strings here would turn a
    programmatic ``axis("static_prune", ["on", "off"])`` into two
    identical scenarios, so strings are resolved like the CLI resolves
    them and anything unrecognised is rejected.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "on", "yes", "1"):
            return True
        if lowered in ("false", "off", "no", "0"):
            return False
    raise ValueError(f"bad value {value!r} for boolean axis {name!r}")


@dataclass(frozen=True)
class Scenario:
    """One expanded grid point: a labelled config plus run-level knobs.

    Scenarios are plain picklable values — a
    :class:`~repro.api.ProcessExecutor` ships them to worker processes,
    which regenerate the SoC from :attr:`config` there.
    """

    label: str
    config: SoCConfig
    effort: Optional[AtpgEffort] = None
    index: int = 0
    #: Fault-model registry name ("stuck_at", "transition", ...); None
    #: keeps the session/flow default.  Declared after ``index`` so the
    #: pre-existing positional construction order is preserved.
    fault_model: Optional[str] = None
    #: Static pre-PODEM pruning (FULL effort only); None keeps the
    #: session/flow default (on).  Appended last for the same reason.
    static_prune: Optional[bool] = None
    #: Simulation kernel ("auto"/"int"/"numpy"); None keeps the
    #: session/flow default.  Appended last for the same reason.
    kernel: Optional[str] = None
    #: ATPG portfolio backend registry name ("podem", "podem-restart",
    #: "dalg"); None keeps the session/flow default.  Appended last for
    #: the same reason.
    atpg_backend: Optional[str] = None
    #: Worker-pool mode ("persistent"/"ephemeral"); None keeps the
    #: session/flow default.  Appended last for the same reason.
    pool: Optional[str] = None

    def build_design(self):
        from repro.api.design import Design
        return Design.from_config(self.config, label=self.label)


class ScenarioGrid:
    """Cartesian product of scenario axes over a base configuration."""

    def __init__(self, base="date13",
                 axes: Optional[Mapping[str, Sequence[object]]] = None,
                 name: Optional[str] = None) -> None:
        if isinstance(base, str):
            self.base_name = base
            self.base = SoCConfig.from_name(base)
        elif isinstance(base, SoCConfig):
            self.base_name = base.cpu.name
            self.base = base
        else:
            raise TypeError(
                f"grid base must be a SoCConfig or preset name, "
                f"got {type(base).__name__}")
        self.name = name or self.base_name
        self._axes: Dict[str, List[object]] = {}
        for axis, values in (axes or {}).items():
            self.axis(axis, values)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def axis(self, name: str, values: Sequence[object]) -> "ScenarioGrid":
        """Add (or replace) an axis; returns ``self`` for chaining."""
        values = list(values)
        if not values:
            raise ValueError(f"scenario axis {name!r} has no values")
        if name == "effort":
            values = [resolve_effort(v) for v in values]
        elif name == "fault_model":
            values = [resolve_fault_model(v).name for v in values]
        elif name == "static_prune":
            values = [_resolve_flag(name, v) for v in values]
        elif name == "kernel":
            from repro.simulation.kernels import normalize_kernel
            values = [normalize_kernel(v) for v in values]
        elif name == "atpg_backend":
            from repro.atpg.portfolio import resolve_atpg_backend
            values = [resolve_atpg_backend(v).name for v in values]
        elif name == "pool":
            from repro.runtime.pool import resolve_pool_mode
            values = [resolve_pool_mode(v) for v in values]
        else:
            # Validate config axes eagerly — a typo should fail at grid
            # construction, not halfway through a long sweep.
            for value in values:
                self.base.with_axis(name, value)
        self._axes[name] = values
        return self

    @property
    def axes(self) -> Dict[str, List[object]]:
        return dict(self._axes)

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        total = 1
        for values in self._axes.values():
            total *= len(values)
        return total

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())

    def scenarios(self) -> List[Scenario]:
        """Expand to the full labelled scenario list (deterministic order)."""
        config_axes = {name: values for name, values in self._axes.items()
                       if name not in RUN_AXES}
        efforts: Sequence[Optional[AtpgEffort]] = (
            self._axes.get("effort") or [None])
        fault_models: Sequence[Optional[str]] = (
            self._axes.get("fault_model") or [None])
        static_prunes: Sequence[Optional[bool]] = (
            self._axes.get("static_prune") or [None])
        kernels: Sequence[Optional[str]] = (
            self._axes.get("kernel") or [None])
        atpg_backends: Sequence[Optional[str]] = (
            self._axes.get("atpg_backend") or [None])
        pools: Sequence[Optional[str]] = (
            self._axes.get("pool") or [None])

        points: List[Scenario] = []
        for config_label, config in expand_axes(self.base, config_axes):
            for effort in efforts:
                for fault_model in fault_models:
                    for static_prune in static_prunes:
                        for kernel in kernels:
                            for atpg_backend in atpg_backends:
                                for pool in pools:
                                    parts = [part
                                             for part in (config_label,)
                                             if part]
                                    if effort is not None:
                                        parts.append(
                                            "effort="
                                            f"{axis_value_label(effort)}")
                                    if fault_model is not None:
                                        parts.append(
                                            f"fault_model={fault_model}")
                                    if static_prune is not None:
                                        parts.append(
                                            "static_prune="
                                            f"{int(static_prune)}")
                                    if kernel is not None:
                                        parts.append(f"kernel={kernel}")
                                    if atpg_backend is not None:
                                        parts.append(
                                            f"atpg_backend={atpg_backend}")
                                    if pool is not None:
                                        parts.append(f"pool={pool}")
                                    label = (f"{self.base_name}"
                                             if not parts
                                             else f"{self.base_name}"
                                                  f"[{','.join(parts)}]")
                                    points.append(
                                        Scenario(label=label, config=config,
                                                 effort=effort,
                                                 fault_model=fault_model,
                                                 static_prune=static_prune,
                                                 kernel=kernel,
                                                 atpg_backend=atpg_backend,
                                                 pool=pool,
                                                 index=len(points)))
        return points

    def __repr__(self) -> str:
        axes = ", ".join(f"{name}×{len(values)}"
                         for name, values in self._axes.items()) or "degenerate"
        return f"ScenarioGrid({self.base_name!r}, {axes}, {len(self)} points)"
