"""One frozen bundle for every per-run knob: :class:`RunOptions`.

Six PRs of plumbing grew seven scattered keywords (``jobs``,
``shard_backend``, ``kernel``, ``fault_model``, ``static_prune``,
``store``, ``effort``) across ``Session(...)``, ``Session.analyze(...)``
and the process-executor boundary; the ATPG portfolio adds two more
(``atpg_backend``, ``atpg_seed``).  :class:`RunOptions` consolidates them:

* ``Session(options=RunOptions(...))`` and ``analyze(options=...)`` accept
  the bundle directly;
* it crosses the :class:`~repro.api.session.ProcessExecutor` boundary as
  one picklable value;
* every existing keyword spelling keeps working through a deprecation
  shim (:func:`warn_legacy_keyword`) that warns once per keyword per
  process and folds the value into a RunOptions.

Every field is optional; ``None`` means "unset — defer to the next layer's
default" exactly like the scattered keywords did, so folding and merging
never invent a value.  :func:`resolve_effort` lives here too (moved from
:mod:`repro.atpg.engine`, which keeps a delegating re-export): it is
consumed by the API layer, the grid and the CLI, not by the engine's inner
loops.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Optional, Set, Union

from repro.atpg.engine import AtpgEffort


def resolve_effort(effort: object,
                   default: Optional[AtpgEffort] = None
                   ) -> Optional[AtpgEffort]:
    """Coerce an effort spec (enum member, string or None) to an enum member.

    The single effort parser shared by :func:`repro.analyze`, the
    :class:`repro.api.Session` defaults, the scenario-grid expansion and the
    CLI.  ``None`` resolves to ``default``; strings are matched
    case-insensitively against the enum values.  Unknown efforts raise a
    :class:`ValueError` spelling the accepted values.
    """
    if effort is None:
        return default
    if isinstance(effort, AtpgEffort):
        return effort
    try:
        return AtpgEffort(str(effort).strip().lower())
    except ValueError:
        names = ", ".join(e.value for e in AtpgEffort)
        raise ValueError(
            f"unknown ATPG effort {effort!r}; expected one of: {names}"
        ) from None


@dataclass(frozen=True)
class RunOptions:
    """Every per-run knob, normalized, in one frozen picklable value.

    Construction validates each field eagerly (unknown efforts, fault
    models, kernels, shard backends and ATPG backends raise the same
    errors as the keywords they replace), so a bad bundle fails at the
    call site, not deep inside a worker process.
    """

    effort: Union[AtpgEffort, str, None] = None
    fault_model: Optional[str] = None
    jobs: Optional[int] = None
    shard_backend: Optional[str] = None
    kernel: Optional[str] = None
    static_prune: Optional[bool] = None
    static_learning: Optional[bool] = None
    store: Any = None
    atpg_backend: Optional[str] = None
    atpg_seed: Optional[int] = None
    pool: Optional[str] = None
    chunk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.effort is not None:
            object.__setattr__(self, "effort", resolve_effort(self.effort))
        if self.fault_model is not None:
            from repro.faults.models import resolve_fault_model

            object.__setattr__(
                self, "fault_model",
                resolve_fault_model(self.fault_model).name)
        if self.jobs is not None:
            object.__setattr__(self, "jobs", int(self.jobs))
        if self.shard_backend is not None:
            from repro.simulation.sharded import resolve_backend

            object.__setattr__(
                self, "shard_backend",
                resolve_backend(self.shard_backend, 1))
        if self.kernel is not None:
            from repro.simulation.kernels import normalize_kernel

            object.__setattr__(self, "kernel", normalize_kernel(self.kernel))
        if self.static_prune is not None:
            object.__setattr__(self, "static_prune", bool(self.static_prune))
        if self.static_learning is not None:
            object.__setattr__(
                self, "static_learning", bool(self.static_learning))
        if self.atpg_backend is not None:
            from repro.atpg.portfolio import resolve_atpg_backend

            object.__setattr__(
                self, "atpg_backend",
                resolve_atpg_backend(self.atpg_backend).name)
        if self.atpg_seed is not None:
            object.__setattr__(self, "atpg_seed", int(self.atpg_seed))
        if self.pool is not None:
            from repro.runtime.pool import resolve_pool_mode

            object.__setattr__(self, "pool", resolve_pool_mode(self.pool))
        if self.chunk is not None:
            chunk = int(self.chunk)
            if chunk < 1:
                raise ValueError(f"chunk must be >= 1, got {chunk}")
            object.__setattr__(self, "chunk", chunk)

    # ------------------------------------------------------------------ #
    def merged_with(self, other: Optional["RunOptions"]) -> "RunOptions":
        """A new bundle where ``other``'s set (non-None) fields win."""
        if other is None:
            return self
        updates = {f.name: getattr(other, f.name) for f in fields(self)
                   if getattr(other, f.name) is not None}
        return replace(self, **updates) if updates else self

    def with_store_spec(self) -> "RunOptions":
        """A copy whose ``store`` is reduced to a picklable spec string.

        A live :class:`~repro.store.base.ArtifactStore` instance does not
        cross process boundaries; its location string does, and the worker
        re-opens the same on-disk store from it.
        """
        store = self.store
        if store is None or isinstance(store, str):
            return self
        root = getattr(store, "root", None)
        return replace(self, store=str(root) if root is not None else None)


#: Keywords already warned about in this process (one warning per spelling).
_WARNED_KEYWORDS: Set[str] = set()


def warn_legacy_keyword(name: str, *, context: str,
                        stacklevel: int = 4) -> None:
    """Emit the once-per-process deprecation warning for a legacy keyword."""
    if name in _WARNED_KEYWORDS:
        return
    _WARNED_KEYWORDS.add(name)
    warnings.warn(
        f"the {context} keyword {name!r} is deprecated; bundle it as "
        f"repro.api.RunOptions({name}=...) and pass options=... instead "
        f"(legacy keywords keep working through this shim for now)",
        DeprecationWarning, stacklevel=stacklevel)


def reset_legacy_keyword_warnings() -> None:
    """Test hook: re-arm the once-per-process keyword warnings."""
    _WARNED_KEYWORDS.clear()


def fold_legacy_kwargs(context: str, options: Optional[RunOptions] = None,
                       *, warn: bool = True, stacklevel: int = 4,
                       **legacy: Any) -> RunOptions:
    """Fold legacy keyword values into one RunOptions bundle.

    ``None`` values are "not provided" (the historical default of every
    keyword) and neither warn nor contribute.  An explicit ``options=``
    bundle wins over any legacy spelling of the same field.  Internal
    callers that merely forward plumbing pass ``warn=False`` — the shim
    warns at the public surface, once, not on every internal hop.
    """
    provided = {name: value for name, value in legacy.items()
                if value is not None}
    if warn:
        for name in sorted(provided):
            warn_legacy_keyword(name, context=context,
                                stacklevel=stacklevel + 1)
    base = RunOptions(**provided)
    return base.merged_with(options)
