"""The golden scenario corpus: named SoC scenarios with pinned Table I.

A corpus directory holds one JSON spec per scenario plus a ``golden/``
subdirectory of committed Table I captures::

    benchmarks/corpus/
        tiny_full.json            {"base": "tiny", "axes": {...}, ...}
        ...
        golden/
            tiny_full.table.txt   the expected rendered Table I, byte-exact

Each spec names a base configuration preset, an ordered mapping of scenario
axes (the :meth:`repro.soc.config.SoCConfig.with_axis` vocabulary — size,
scan, debug, ``cpu.<field>``, ...), an ATPG effort and optionally a fault
model (``"fault_model": "transition"`` — default stuck-at), so the corpus
pins Table I per model.  :func:`run_corpus`
builds every scenario, runs the full identification flow and byte-compares
the rendered Table I against the golden capture; with ``update=True`` it
rewrites the captures instead (the intentional-refresh workflow).

Because sharded execution is verdict-identical by design, the corpus is the
end-to-end regression net for :mod:`repro.simulation.sharded`: CI runs it
serially *and* with ``--jobs 2`` on the process backend and fails on any
diff.  ``python -m repro corpus`` is the command-line entry point.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.faults.models import resolve_fault_model
from repro.soc.config import SoCConfig

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS_DIR = Path("benchmarks") / "corpus"

#: Suffix of a golden capture file inside ``<corpus>/golden/``.
GOLDEN_SUFFIX = ".table.txt"


class CorpusError(ValueError):
    """A corpus spec is malformed or names unknown configuration."""


@dataclass(frozen=True)
class CorpusEntry:
    """One scenario of the golden corpus."""

    name: str
    base: str
    axes: Tuple[Tuple[str, object], ...]
    effort: str
    fault_model: str
    description: str
    path: Path
    #: Simulation kernel pinned by the spec ("auto"/"int"/"numpy"); None
    #: defers to the run's session default.  Kernels are byte-identical by
    #: contract, so this never changes a capture — it only pins which
    #: engine a CI leg exercises.
    kernel: Optional[str] = None
    #: Worker-pool mode pinned by the spec ("persistent"/"ephemeral");
    #: None defers to the run's session default.  Pool lifecycle never
    #: changes a capture — it only pins which runtime a CI leg exercises.
    pool: Optional[str] = None

    @property
    def golden_path(self) -> Path:
        return self.path.parent / "golden" / f"{self.name}{GOLDEN_SUFFIX}"

    def build_config(self) -> SoCConfig:
        """Expand base preset + axes into the scenario's SoCConfig."""
        config = SoCConfig.from_name(self.base)
        for axis, value in self.axes:
            config = config.with_axis(axis, value)
        return config

    def label(self) -> str:
        parts = [f"base={self.base}"]
        parts.extend(f"{axis}={value}" for axis, value in self.axes)
        parts.append(f"effort={self.effort}")
        if self.fault_model != resolve_fault_model(None).name:
            parts.append(f"fault_model={self.fault_model}")
        if self.kernel is not None:
            parts.append(f"kernel={self.kernel}")
        if self.pool is not None:
            parts.append(f"pool={self.pool}")
        return ",".join(parts)


@dataclass
class CorpusOutcome:
    """Result of checking (or refreshing) one corpus entry."""

    name: str
    status: str           # "match" | "diff" | "missing-golden" | "updated"
    elapsed_seconds: float = 0.0
    rendered: str = ""
    golden: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("match", "updated")


def _parse_entry(path: Path) -> CorpusEntry:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CorpusError(f"cannot read corpus spec {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise CorpusError(f"corpus spec {path} must be a JSON object")
    base = data.get("base")
    if not isinstance(base, str) or base not in SoCConfig.named_configs():
        known = ", ".join(sorted(SoCConfig.named_configs()))
        raise CorpusError(
            f"corpus spec {path}: 'base' must be one of: {known}")
    axes = data.get("axes", {})
    if not isinstance(axes, dict):
        raise CorpusError(f"corpus spec {path}: 'axes' must be an object")
    effort = data.get("effort", "tie")
    try:
        fault_model = resolve_fault_model(data.get("fault_model")).name
    except ValueError as exc:
        raise CorpusError(f"corpus spec {path}: {exc}") from exc
    kernel = data.get("kernel")
    if kernel is not None:
        from repro.simulation.kernels import normalize_kernel
        try:
            kernel = normalize_kernel(kernel)
        except ValueError as exc:
            raise CorpusError(f"corpus spec {path}: {exc}") from exc
    pool = data.get("pool")
    if pool is not None:
        from repro.runtime.pool import resolve_pool_mode
        try:
            pool = resolve_pool_mode(pool)
        except ValueError as exc:
            raise CorpusError(f"corpus spec {path}: {exc}") from exc
    return CorpusEntry(
        name=path.stem,
        base=base,
        axes=tuple(axes.items()),
        effort=str(effort),
        fault_model=fault_model,
        description=str(data.get("description", "")),
        path=path,
        kernel=kernel,
        pool=pool,
    )


def load_corpus(directory: Union[str, Path] = DEFAULT_CORPUS_DIR
                ) -> List[CorpusEntry]:
    """Load every ``*.json`` spec of a corpus directory, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise CorpusError(f"corpus directory {directory} does not exist")
    entries = [_parse_entry(path)
               for path in sorted(directory.glob("*.json"))]
    if not entries:
        raise CorpusError(f"corpus directory {directory} has no *.json specs")
    return entries


def render_entry(entry: CorpusEntry, session=None) -> str:
    """Run the identification flow for one entry; rendered Table I + '\\n'."""
    from repro.api.options import RunOptions
    from repro.api.session import Session

    session = session if session is not None else Session()
    report = session.analyze(entry.build_config(),
                             options=RunOptions(effort=entry.effort,
                                                fault_model=entry.fault_model,
                                                kernel=entry.kernel,
                                                pool=entry.pool))
    return report.to_table() + "\n"


def run_corpus(directory: Union[str, Path] = DEFAULT_CORPUS_DIR, *,
               session=None,
               jobs: Optional[int] = None,
               shard_backend: Optional[str] = None,
               kernel: Optional[str] = None,
               update: bool = False,
               only: Optional[Sequence[str]] = None,
               fault_model: Optional[str] = None,
               static_prune: Optional[bool] = None,
               store=None,
               atpg_backend: Optional[str] = None,
               atpg_seed: Optional[int] = None,
               pool: Optional[str] = None,
               chunk: Optional[int] = None) -> List[CorpusOutcome]:
    """Run (or refresh) the corpus; one outcome per entry, sorted by name.

    ``jobs``/``shard_backend``/``kernel`` configure fault-population
    sharding and the simulation kernel for the underlying analyses — the
    whole point of the corpus is that they must not move a single byte of
    any capture (an entry pinning its own ``"kernel"`` overrides the
    run-level spec for that entry).  ``fault_model`` restricts the
    run to the entries pinned under that model (a filter, never an
    override: each entry's golden capture belongs to its declared model).
    ``static_prune`` toggles the static pre-filter for every entry — the
    goldens are pinned at tie effort, where the static layer never runs,
    so both settings must reproduce every capture byte-for-byte.
    ``store`` attaches a durable artifact store (:mod:`repro.store`) to
    the run's session — warm artifacts replay across corpus runs, and
    the captures must still not move a byte.  ``atpg_backend`` /
    ``atpg_seed`` select the ATPG portfolio backend
    (:mod:`repro.atpg.portfolio`) — classification verdicts are
    backend- and seed-independent by contract, so these must not move a
    byte either.
    """
    from repro.api.options import RunOptions
    from repro.api.session import Session

    entries = load_corpus(directory)
    if only:
        # Validate the requested names against the *unfiltered* corpus so a
        # real entry pinned under another model is not reported as unknown.
        wanted = set(only)
        unknown = wanted - {entry.name for entry in entries}
        if unknown:
            raise CorpusError(
                f"unknown corpus entries: {', '.join(sorted(unknown))}")
        entries = [entry for entry in entries if entry.name in wanted]
    if fault_model is not None:
        wanted_model = resolve_fault_model(fault_model).name
        dropped = [entry.name for entry in entries
                   if entry.fault_model != wanted_model]
        entries = [entry for entry in entries
                   if entry.fault_model == wanted_model]
        if not entries:
            detail = (f" (selected entries pinned under other models: "
                      f"{', '.join(dropped)})" if dropped else "")
            raise CorpusError(
                f"no corpus entries use fault model {wanted_model!r}{detail}")

    if session is None:
        session = Session(options=RunOptions(
            jobs=jobs, shard_backend=shard_backend, kernel=kernel,
            static_prune=static_prune, static_learning=static_prune,
            store=store, atpg_backend=atpg_backend, atpg_seed=atpg_seed,
            pool=pool, chunk=chunk))

    outcomes: List[CorpusOutcome] = []
    for entry in entries:
        started = time.perf_counter()
        rendered = render_entry(entry, session)
        elapsed = time.perf_counter() - started
        golden_path = entry.golden_path
        if update:
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(rendered, encoding="utf-8")
            outcomes.append(CorpusOutcome(entry.name, "updated", elapsed,
                                          rendered, rendered))
            continue
        if not golden_path.is_file():
            outcomes.append(CorpusOutcome(entry.name, "missing-golden",
                                          elapsed, rendered, None))
            continue
        golden = golden_path.read_text(encoding="utf-8")
        status = "match" if rendered == golden else "diff"
        outcomes.append(CorpusOutcome(entry.name, status, elapsed,
                                      rendered, golden))
    return outcomes


def diff_text(outcome: CorpusOutcome) -> str:
    """A unified diff of golden vs rendered for a failing outcome."""
    import difflib

    golden = (outcome.golden or "").splitlines(keepends=True)
    rendered = outcome.rendered.splitlines(keepends=True)
    return "".join(difflib.unified_diff(
        golden, rendered,
        fromfile=f"golden/{outcome.name}{GOLDEN_SUFFIX}",
        tofile=f"rendered/{outcome.name}", lineterm="\n"))
