"""The :class:`Session` — the stateful front door of the package.

A session owns the three things that should outlive a single analysis:

* an :class:`~repro.pipeline.ArtifactCache` (bounded, thread-safe) shared
  by every analysis and sweep the session runs, so scenario variants
  replay each other's effort-independent artifacts;
* an executor backend (:mod:`repro.api.executors`) deciding *how* sweep
  scenarios run — serially, on threads, or on worker processes;
* the default pass selection / ATPG effort / flow configuration applied
  when a call does not override them.

``Session.analyze`` is the one-design entry point; ``Session.sweep``
expands a :class:`~repro.api.ScenarioGrid` and streams per-scenario
results as the backend completes them, aggregating into a
:class:`~repro.api.SweepReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as _replace
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.atpg.engine import AtpgEffort
from repro.core.results import FlowConfig, OnlineUntestableReport
from repro.faults.models import FaultModel
from repro.api.design import Design
from repro.api.executors import Executor, resolve_executor
from repro.api.grid import Scenario, ScenarioGrid
from repro.api.options import (RunOptions, fold_legacy_kwargs,
                               resolve_effort)
from repro.api.sweep import SweepReport, SweepResult
from repro.pipeline import (ArtifactCache, Pipeline, default_pass_names)

#: Default LRU bound of a session's artifact cache — large enough for every
#: pass of a few hundred scenarios, small enough to bound long sweeps.
DEFAULT_CACHE_ENTRIES = 512


@dataclass(frozen=True)
class _ProcessJob:
    """The picklable payload shipped to process-pool workers."""

    scenario: Scenario
    passes: Optional[Tuple[str, ...]]
    flow_config: Optional[FlowConfig]
    effort: Optional[AtpgEffort]
    parallel_passes: Union[bool, int]
    #: The parent session's run options reduced to one picklable bundle
    #: (:meth:`RunOptions.with_store_spec`): the kernel spec crosses as a
    #: plain string the worker resolves locally, and the durable store
    #: crosses as its location — workers cannot share the parent's
    #: in-memory LRU, but they *can* share the on-disk store, so a
    #: process-backend sweep still reuses warm artifacts.
    options: Optional[RunOptions] = None


def _run_process_job(job: _ProcessJob) -> Dict[str, object]:
    """Worker-side scenario run: rebuild, analyze, return a JSON payload.

    Runs in a worker process, so nothing in-memory is shared with the
    parent: the design is regenerated from its config and the report
    travels back as its serializable core (detail objects stay behind).
    """
    started = time.perf_counter()
    opts = job.options or RunOptions()
    # Fresh, unshared worker session — but attached to the shared durable
    # store when the parent session has one.
    session = Session(cache_entries=None,
                      options=RunOptions(store=opts.store))
    design = job.scenario.build_design()
    report = session.analyze(design,
                             passes=list(job.passes) if job.passes else None,
                             parallel=job.parallel_passes,
                             config=job.flow_config,
                             options=RunOptions(
                                 effort=job.scenario.effort or job.effort,
                                 fault_model=job.scenario.fault_model,
                                 static_prune=job.scenario.static_prune,
                                 kernel=job.scenario.kernel or opts.kernel,
                                 atpg_backend=(job.scenario.atpg_backend
                                               or opts.atpg_backend),
                                 atpg_seed=opts.atpg_seed,
                                 pool=job.scenario.pool or opts.pool,
                                 chunk=opts.chunk))
    return {
        "label": job.scenario.label,
        "signature": design.signature,
        "effort": (job.scenario.effort or job.effort or
                   (job.flow_config.effort if job.flow_config
                    else FlowConfig().effort)).value,
        "elapsed_seconds": time.perf_counter() - started,
        "report": report.to_json_dict(),
    }


class Session:
    """Reusable analysis context: cache + executor + pass defaults."""

    def __init__(self, *,
                 executor: Union[str, Executor, None] = None,
                 max_workers: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 cache_entries: Optional[int] = DEFAULT_CACHE_ENTRIES,
                 options: Optional[RunOptions] = None,
                 store=None,
                 passes: Optional[Sequence] = None,
                 effort: Union[AtpgEffort, str, None] = None,
                 flow_config: Optional[FlowConfig] = None,
                 parallel_passes: Union[bool, int] = False,
                 jobs: Optional[int] = None,
                 shard_backend: Optional[str] = None,
                 kernel: Optional[str] = None,
                 fault_model: Union[str, FaultModel, None] = None,
                 static_prune: Optional[bool] = None,
                 static_learning: Optional[bool] = None) -> None:
        #: The session-default run knobs as one normalized bundle.  The
        #: scattered keywords (``store``, ``effort``, ``jobs``, ...) are a
        #: deprecated spelling of the same thing: they warn once per
        #: process and fold into ``options`` (an explicit ``options=``
        #: field wins over its legacy twin).
        self.options = fold_legacy_kwargs(
            "Session", options,
            store=store, effort=effort, jobs=jobs,
            shard_backend=shard_backend, kernel=kernel,
            fault_model=fault_model, static_prune=static_prune,
            static_learning=static_learning)
        # A persistent pool mode keeps the sweep executor's process pool
        # warm too: one Session then owns one long-lived set of workers
        # for both the sharded engines and the scenario sweeps.
        self.executor = resolve_executor(
            executor, max_workers,
            persistent=(self.options.pool == "persistent"))
        self.max_workers = max_workers
        if cache is not None:
            if self.options.store is not None and (
                    cache.store is not self.options.store):
                raise ValueError(
                    "pass either an explicit cache or a store spec, not "
                    "both (attach the store when building the cache: "
                    "ArtifactCache(store=...))")
            self.cache = cache
        else:
            #: ``store`` makes the cache durable: a path (or
            #: "backend:location" spec, or ArtifactStore instance) under
            #: which pass results persist across processes and machines —
            #: see :mod:`repro.store`.
            self.cache = ArtifactCache(max_entries=cache_entries,
                                       store=self.options.store)
        self.passes = list(passes) if passes is not None else None
        self.flow_config = flow_config
        self.parallel_passes = parallel_passes

    # Back-compat views of the options bundle: pre-redesign code read the
    # knobs as plain session attributes (``session.jobs`` etc.), so each
    # stays readable — they are one bundle field now.
    @property
    def effort(self) -> Optional[AtpgEffort]:
        return self.options.effort

    @property
    def jobs(self) -> Optional[int]:
        return self.options.jobs

    @property
    def shard_backend(self) -> Optional[str]:
        return self.options.shard_backend

    @property
    def kernel(self) -> Optional[str]:
        return self.options.kernel

    @property
    def pool(self) -> Optional[str]:
        return self.options.pool

    @property
    def chunk(self) -> Optional[int]:
        return self.options.chunk

    @property
    def fault_model(self) -> Optional[str]:
        return self.options.fault_model

    @property
    def static_prune(self) -> Optional[bool]:
        return self.options.static_prune

    @property
    def static_learning(self) -> Optional[bool]:
        return self.options.static_learning

    @property
    def atpg_backend(self) -> Optional[str]:
        return self.options.atpg_backend

    @property
    def atpg_seed(self) -> Optional[int]:
        return self.options.atpg_seed

    # ------------------------------------------------------------------ #
    # single-design analysis
    # ------------------------------------------------------------------ #
    def design(self, target, *, memory_map=None,
               label: Optional[str] = None) -> Design:
        """Coerce any accepted target spelling to a :class:`Design`."""
        return Design.coerce(target, memory_map=memory_map, label=label)

    def analyze(self, target, *,
                passes: Optional[Sequence] = None,
                effort: Union[AtpgEffort, str, None] = None,
                parallel: Union[bool, int, None] = None,
                config: Optional[FlowConfig] = None,
                memory_map=None,
                faults: Optional[Iterable] = None,
                options: Optional[RunOptions] = None,
                jobs: Optional[int] = None,
                kernel: Optional[str] = None,
                fault_model: Union[str, FaultModel, None] = None,
                static_prune: Optional[bool] = None,
                static_learning: Optional[bool] = None
                ) -> OnlineUntestableReport:
        """Analyze one design, applying session defaults where not overridden.

        ``target`` is anything :meth:`design` accepts.  Per-call knobs
        travel in ``options`` (a :class:`RunOptions`); the scattered
        keywords (``effort``, ``jobs``, ...) are the deprecated spelling
        and fold into it.  Results are memoised per pass in the session
        cache, so re-analyzing the same design (or a structural clone, or
        a variant that only changes facets a pass does not read) replays
        instead of recomputing.  ``jobs`` > 1 shards the fault population
        across workers (identical results, see
        :mod:`repro.simulation.sharded`).
        """
        call = fold_legacy_kwargs(
            "Session.analyze", options,
            effort=effort, jobs=jobs, kernel=kernel,
            fault_model=fault_model, static_prune=static_prune,
            static_learning=static_learning)
        if call.store is not None:
            raise ValueError(
                "store is a session-level knob: build the session with "
                "Session(options=RunOptions(store=...)) instead of "
                "passing it per analyze() call")
        design = self.design(target, memory_map=memory_map)
        flow_config = self._effective_flow_config(config, call)
        pipeline = self._pipeline(passes, flow_config, parallel)
        result = pipeline.run(design.netlist, config=flow_config,
                              memory_map=design.memory_map, faults=faults)
        return result.report

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #
    def iter_sweep(self, grid: Union[ScenarioGrid, Sequence[Scenario]], *,
                   executor: Union[str, Executor, None] = None,
                   passes: Optional[Sequence] = None,
                   effort: Union[AtpgEffort, str, None] = None,
                   config: Optional[FlowConfig] = None
                   ) -> Iterator[SweepResult]:
        """Run every grid scenario, yielding results *as they complete*.

        Completion order depends on the backend; each
        :class:`~repro.api.SweepResult` carries its scenario index, so
        callers needing grid order can sort afterwards (``sweep`` does).
        A failing scenario yields an error-carrying result rather than
        aborting the rest of the sweep.
        """
        scenarios = self._expand(grid)
        backend = (self.executor if executor is None
                   else resolve_executor(executor, self.max_workers))
        effort_default = resolve_effort(effort, self.effort)

        if backend.requires_pickling:
            jobs = [self._process_job(s, passes, config, effort_default)
                    for s in scenarios]
            worker = _run_process_job
        else:
            jobs = scenarios
            worker = lambda scenario: self._run_scenario(  # noqa: E731
                scenario, passes, config, effort_default)

        for index, outcome in backend.imap_unordered(worker, jobs):
            scenario = scenarios[index]
            if isinstance(outcome, BaseException):
                yield SweepResult(
                    index=scenario.index, label=scenario.label,
                    effort=self._effort_label(scenario, effort_default,
                                              config),
                    error=f"{type(outcome).__name__}: {outcome}")
            elif isinstance(outcome, SweepResult):
                yield outcome
            else:  # process-backend JSON payload
                yield SweepResult(
                    index=scenario.index, label=outcome["label"],
                    design_signature=outcome["signature"],
                    effort=outcome["effort"],
                    elapsed_seconds=outcome["elapsed_seconds"],
                    report=OnlineUntestableReport.from_json_dict(
                        outcome["report"]))

    def sweep(self, grid: Union[ScenarioGrid, Sequence[Scenario]], *,
              executor: Union[str, Executor, None] = None,
              passes: Optional[Sequence] = None,
              effort: Union[AtpgEffort, str, None] = None,
              config: Optional[FlowConfig] = None,
              on_result: Optional[Callable[[SweepResult], None]] = None
              ) -> SweepReport:
        """Run the whole grid and aggregate into a :class:`SweepReport`.

        ``on_result`` is invoked once per scenario in completion order (for
        progress reporting) before the results are sorted into grid order.
        """
        backend = (self.executor if executor is None
                   else resolve_executor(executor, self.max_workers))
        before = self.cache.stats
        started = time.perf_counter()
        results = []
        for result in self.iter_sweep(grid, executor=backend, passes=passes,
                                      effort=effort, config=config):
            results.append(result)
            if on_result is not None:
                on_result(result)
        results.sort(key=lambda r: r.index)
        # Make the sweep's artifacts durable before reporting: anything
        # still in the write-behind lane lands now, so the store counters
        # below are final and a follow-up process sees every warm entry.
        self.cache.flush()
        after = self.cache.stats
        return SweepReport(
            results=results,
            grid_name=getattr(grid, "name", "") or "",
            executor=backend.name,
            elapsed_seconds=time.perf_counter() - started,
            cache_stats={key: value - before.get(key, 0)
                         for key, value in after.items()
                         if key != "entries"},
        )

    @property
    def cache_stats(self) -> Dict[str, int]:
        return self.cache.stats

    @property
    def store(self):
        """The durable artifact store behind the cache (None = memory only)."""
        return self.cache.store

    def _store_spec(self) -> Optional[str]:
        """A picklable respawn spec of the session's store, if one exists.

        Local directory stores reduce to their root path; an exotic custom
        backend instance has no string spelling, so process-backend workers
        then run store-less (the sweep still succeeds, just cold).
        """
        store = self.cache.store
        if store is None:
            return None
        root = getattr(store, "root", None)
        return str(root) if root is not None else None

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _expand(grid) -> List[Scenario]:
        if isinstance(grid, ScenarioGrid):
            return grid.scenarios()
        scenarios = list(grid)
        for item in scenarios:
            if not isinstance(item, Scenario):
                raise TypeError(
                    "sweep expects a ScenarioGrid or a sequence of "
                    f"Scenario objects, got {type(item).__name__}")
        return [(_replace(s, index=i) if s.index != i else s)
                for i, s in enumerate(scenarios)]

    def _effective_flow_config(self, config: Optional[FlowConfig],
                               call: Optional[RunOptions] = None
                               ) -> FlowConfig:
        call = call if call is not None else RunOptions()
        flow_config = config if config is not None else self.flow_config
        flow_config = flow_config if flow_config is not None else FlowConfig()
        resolved = resolve_effort(call.effort, self.effort if config is None
                                  else None)
        if resolved is not None:
            flow_config = _replace(flow_config, effort=resolved)
        if call.jobs is not None:
            # Explicit per-call jobs wins over both the session default
            # and whatever the flow config carries (so jobs=1 can force a
            # serial run of a sharded config).
            flow_config = _replace(flow_config, jobs=call.jobs)
        elif self.jobs is not None and flow_config.jobs == 1:
            flow_config = _replace(flow_config, jobs=self.jobs)
        # Shard backend / simulation kernel: explicit per-call wins, the
        # session default fills in only when the config carries none
        # (runtime knobs, never cache facets).
        if call.shard_backend is not None:
            flow_config = _replace(flow_config,
                                   shard_backend=call.shard_backend)
        elif (self.shard_backend is not None
                and flow_config.shard_backend is None):
            flow_config = _replace(flow_config,
                                   shard_backend=self.shard_backend)
        if call.kernel is not None:
            flow_config = _replace(flow_config, kernel=call.kernel)
        elif (self.kernel is not None
                and getattr(flow_config, "kernel", None) is None):
            flow_config = _replace(flow_config, kernel=self.kernel)
        if call.pool is not None:
            flow_config = _replace(flow_config, pool=call.pool)
        elif (self.pool is not None
                and getattr(flow_config, "pool", None) is None):
            flow_config = _replace(flow_config, pool=self.pool)
        if call.chunk is not None:
            flow_config = _replace(flow_config, chunk=call.chunk)
        elif (self.chunk is not None
                and getattr(flow_config, "chunk", None) is None):
            flow_config = _replace(flow_config, chunk=self.chunk)
        if call.fault_model is not None:
            # Explicit per-call model wins over the session default and the
            # flow config.
            flow_config = _replace(flow_config,
                                   fault_model=call.fault_model)
        elif self.fault_model is not None and config is None:
            # Like the effort default: the session model applies only when
            # no explicit config was handed in — FlowConfig(fault_model=
            # "stuck_at") passed by the caller must stay stuck-at.
            flow_config = _replace(flow_config, fault_model=self.fault_model)
        # Static-analysis and ATPG-portfolio knobs: explicit per-call wins;
        # the session default applies only when no explicit config was
        # handed in (same rule as the fault model above).
        if call.static_prune is not None:
            flow_config = _replace(flow_config,
                                   static_prune=call.static_prune)
        elif self.static_prune is not None and config is None:
            flow_config = _replace(flow_config,
                                   static_prune=self.static_prune)
        if call.static_learning is not None:
            flow_config = _replace(flow_config,
                                   static_learning=call.static_learning)
        elif self.static_learning is not None and config is None:
            flow_config = _replace(flow_config,
                                   static_learning=self.static_learning)
        if call.atpg_backend is not None:
            flow_config = _replace(flow_config,
                                   atpg_backend=call.atpg_backend)
        elif self.atpg_backend is not None and config is None:
            flow_config = _replace(flow_config,
                                   atpg_backend=self.atpg_backend)
        if call.atpg_seed is not None:
            flow_config = _replace(flow_config, atpg_seed=call.atpg_seed)
        elif self.atpg_seed is not None and config is None:
            flow_config = _replace(flow_config, atpg_seed=self.atpg_seed)
        return flow_config

    def _pipeline(self, passes: Optional[Sequence],
                  flow_config: FlowConfig,
                  parallel: Union[bool, int, None]) -> Pipeline:
        selection = passes if passes is not None else self.passes
        if selection is None:
            selection = default_pass_names(flow_config)
        parallel = self.parallel_passes if parallel is None else parallel
        max_workers = (parallel
                       if isinstance(parallel, int)
                       and not isinstance(parallel, bool) else None)
        return Pipeline(list(selection), parallel=bool(parallel),
                        max_workers=max_workers, cache=self.cache)

    def _run_scenario(self, scenario: Scenario,
                      passes: Optional[Sequence],
                      config: Optional[FlowConfig],
                      effort_default: Optional[AtpgEffort]) -> SweepResult:
        started = time.perf_counter()
        design = scenario.build_design()
        report = self.analyze(design, passes=passes, config=config,
                              options=RunOptions(
                                  effort=scenario.effort or effort_default,
                                  fault_model=scenario.fault_model,
                                  static_prune=scenario.static_prune,
                                  kernel=scenario.kernel,
                                  atpg_backend=scenario.atpg_backend,
                                  pool=scenario.pool))
        return SweepResult(
            index=scenario.index, label=scenario.label,
            design_signature=design.signature,
            effort=self._effort_label(scenario, effort_default, config),
            elapsed_seconds=time.perf_counter() - started,
            report=report)

    def _effort_label(self, scenario: Scenario,
                      effort_default: Optional[AtpgEffort],
                      config: Optional[FlowConfig] = None) -> str:
        effort = (scenario.effort or effort_default
                  or (config.effort if config is not None
                      else (self.flow_config.effort if self.flow_config
                            else FlowConfig().effort)))
        return effort.value

    def _process_job(self, scenario: Scenario, passes: Optional[Sequence],
                     config: Optional[FlowConfig],
                     effort_default: Optional[AtpgEffort]) -> _ProcessJob:
        selection = passes if passes is not None else self.passes
        if selection is not None:
            names = tuple(p for p in selection if isinstance(p, str))
            if len(names) != len(selection):
                raise ValueError(
                    "ProcessExecutor sweeps require pass *names* (picklable); "
                    "got pass objects — register them and select by name, or "
                    "use the serial/thread executor")
        else:
            names = None
        # Ship the *effective* flow config so session-level defaults —
        # including the fault-population sharding knobs — survive the
        # process boundary (worker sessions are built bare).
        defaults_set = any(
            getattr(self.options, name) is not None
            for name in ("jobs", "shard_backend", "kernel", "fault_model",
                         "static_prune", "static_learning", "atpg_backend",
                         "atpg_seed", "pool", "chunk"))
        flow_config = (self._effective_flow_config(config)
                       if (defaults_set
                           or config is not None
                           or self.flow_config is not None)
                       else None)
        options = _replace(self.options, store=self._store_spec())
        return _ProcessJob(scenario=scenario, passes=names,
                           flow_config=flow_config,
                           effort=effort_default,
                           parallel_passes=self.parallel_passes,
                           options=options)

    # ------------------------------------------------------------------ #
    # parallel-runtime lifecycle
    # ------------------------------------------------------------------ #
    def worker_pool(self):
        """The warm :class:`~repro.runtime.WorkerPool` of this session.

        Resolved from the process-global pool registry for the session's
        configured worker count, so every analysis the session runs — and
        every other session configured identically — shares one set of
        warm workers with their installed netlists and job state.  Returns
        ``None`` unless the session was built with ``pool="persistent"``.
        """
        if self.options.pool != "persistent":
            return None
        from repro.runtime import get_pool
        from repro.simulation.sharded import resolve_jobs

        import os
        return get_pool(resolve_jobs(self.options.jobs),
                        os.environ.get("REPRO_POOL_START_METHOD") or None)

    def pool_stats(self) -> List[Dict[str, object]]:
        """Stats snapshots of every live warm worker pool (may be empty)."""
        from repro.runtime import pool_stats
        return pool_stats()

    def close(self, *, shutdown_pools: bool = False) -> None:
        """Release session-held parallel resources.

        Closes a persistent sweep-executor process pool if one exists.
        The sharded engines' warm worker pools are process-global (shared
        across sessions) and survive by default; ``shutdown_pools=True``
        tears them down too — what the analysis service does on drain.
        """
        closer = getattr(self.executor, "close", None)
        if callable(closer):
            closer()
        if shutdown_pools:
            from repro.runtime import shutdown_pools as _shutdown
            _shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"Session(executor={self.executor.name!r}, "
                f"cache={self.cache.stats}, "
                f"effort={self.effort.value if self.effort else None!r})")
