"""Pluggable execution backends for scenario sweeps.

An executor knows one thing: how to run a worker function over a list of
jobs and hand back ``(index, outcome)`` pairs *as they complete*, where the
outcome is either the worker's return value or the exception it raised.
That narrow contract is what lets :meth:`repro.api.Session.sweep` stream
:class:`~repro.api.SweepResult` items regardless of the backend:

* :class:`SerialExecutor` — in-process, in-order; zero overhead, the
  default, and the reference behaviour the others must match.
* :class:`ThreadExecutor` — a thread pool; scenarios share the session's
  :class:`~repro.pipeline.ArtifactCache` so variants replay each other's
  effort-independent artifacts.  The analyses are pure Python, but the
  per-scenario work releases the GIL rarely — the win is overlap between
  scenarios with heavy cache reuse, not raw parallel speed-up.
* :class:`ProcessExecutor` — a process pool for CPU-bound sweeps.  Jobs
  must be picklable and workers rebuild designs from their
  :class:`~repro.soc.config.SoCConfig`; the in-memory artifact cache is
  *not* shared across processes (each worker starts cold).

Custom backends (a cluster queue, an async gateway) implement the same
``imap_unordered`` method and set ``requires_pickling`` accordingly.
"""

from __future__ import annotations

from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from typing import (Any, Callable, Iterator, Optional, Protocol, Sequence,
                    Tuple, Union, runtime_checkable)

Outcome = Union[Any, BaseException]


@runtime_checkable
class Executor(Protocol):
    """Structural protocol every sweep backend satisfies."""

    #: Short backend name ("serial" / "thread" / "process" / custom).
    name: str
    #: True when jobs cross a process boundary: the worker function and
    #: every job payload must then be picklable, and in-process state
    #: (caches, registries) is not shared with the workers.
    requires_pickling: bool

    def imap_unordered(self, fn: Callable[[Any], Any],
                       jobs: Sequence[Any]) -> Iterator[Tuple[int, Outcome]]:
        """Yield ``(job_index, result_or_exception)`` as jobs complete."""
        ...


class SerialExecutor:
    """Run jobs one after another in the calling thread (the default)."""

    name = "serial"
    requires_pickling = False

    def imap_unordered(self, fn, jobs) -> Iterator[Tuple[int, Outcome]]:
        for index, job in enumerate(jobs):
            try:
                yield index, fn(job)
            except BaseException as exc:  # noqa: BLE001 — reported per job
                yield index, exc


class _PoolExecutor:
    """Shared completion-streaming logic over a concurrent.futures pool."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def _make_pool(self, n_jobs: int):
        raise NotImplementedError

    def imap_unordered(self, fn, jobs) -> Iterator[Tuple[int, Outcome]]:
        jobs = list(jobs)
        if not jobs:
            return
        with self._make_pool(len(jobs)) as pool:
            futures = {pool.submit(fn, job): index
                       for index, job in enumerate(jobs)}
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    exc = future.exception()
                    yield index, (exc if exc is not None else future.result())


class ThreadExecutor(_PoolExecutor):
    """Run jobs on a thread pool, streaming completions."""

    name = "thread"
    requires_pickling = False

    def _make_pool(self, n_jobs: int):
        workers = self.max_workers or min(8, max(2, n_jobs))
        return ThreadPoolExecutor(max_workers=workers,
                                  thread_name_prefix="repro-sweep")


class _BorrowedPool:
    """Context manager lending a long-lived pool without closing it."""

    def __init__(self, pool) -> None:
        self._pool = pool

    def __enter__(self):
        return self._pool

    def __exit__(self, *exc) -> bool:
        return False


class ProcessExecutor(_PoolExecutor):
    """Run jobs on a process pool, streaming completions.

    With ``persistent=True`` the underlying :class:`ProcessPoolExecutor`
    is created once and reused across ``imap_unordered`` calls — repeated
    sweeps through one :class:`~repro.api.Session` then skip the
    interpreter spin-up (and re-import) cost of a cold pool each time.
    Call :meth:`close` (or let the owning session do it) to release the
    workers; a closed executor transparently re-creates the pool on the
    next use.
    """

    name = "process"
    requires_pickling = True

    def __init__(self, max_workers: Optional[int] = None,
                 persistent: bool = False) -> None:
        super().__init__(max_workers)
        self.persistent = persistent
        self._pool: Optional[ProcessPoolExecutor] = None

    def _make_pool(self, n_jobs: int):
        workers = self.max_workers or min(4, max(2, n_jobs))
        if not self.persistent:
            return ProcessPoolExecutor(max_workers=workers)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return _BorrowedPool(self._pool)

    def close(self) -> None:
        """Shut down the persistent pool (no-op for the ephemeral mode)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()


#: Backend name -> factory, the vocabulary accepted by ``Session`` and the
#: ``python -m repro sweep --executor`` flag.
EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(spec: Union[str, Executor, None],
                     max_workers: Optional[int] = None, *,
                     persistent: bool = False) -> Executor:
    """Coerce an executor spec (name, instance or None) to a backend.

    ``persistent=True`` makes a process backend keep its worker pool warm
    across sweeps (see :class:`ProcessExecutor`); the other backends have
    no spin-up cost and ignore it.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        try:
            factory = EXECUTORS[spec.strip().lower()]
        except KeyError:
            known = ", ".join(sorted(EXECUTORS))
            raise ValueError(
                f"unknown executor {spec!r}; expected one of: {known}"
            ) from None
        if factory is SerialExecutor:
            return factory()
        if factory is ProcessExecutor:
            return factory(max_workers=max_workers, persistent=persistent)
        return factory(max_workers=max_workers)
    if isinstance(spec, Executor):
        return spec
    raise TypeError(
        f"executor must be a name or Executor instance, "
        f"got {type(spec).__name__}")
