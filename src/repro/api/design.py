"""The :class:`Design` handle — an immutable, signed analysis target.

A :class:`Design` bundles everything one scenario of the paper's flow needs:
the (scan-inserted) core netlist, the :class:`~repro.soc.config.SoCConfig`
it was generated from (when known), the mission memory map, and the
scan/debug metadata discovered at build time.  It exposes a stable
*content signature* — a digest of the netlist structure plus the memory
map — under which :class:`repro.api.Session` keys cross-scenario artifact
reuse: two designs with equal signatures replay each other's cached pass
results.

Designs are cheap value-style handles: every ``with_*``/factory call
returns a new object, and the wrapped netlist must not be mutated after
the design is created (the signature is computed once and trusted).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.memory.memory_map import MemoryMap
from repro.netlist.module import Netlist
from repro.pipeline.cache import memory_map_key, netlist_signature
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import SoC, build_soc


class Design:
    """Immutable handle on one analysis target (netlist + mission context)."""

    __slots__ = ("_netlist", "_config", "_memory_map", "_debug_interface",
                 "_scan", "_label", "_signature")

    def __init__(self, netlist: Netlist,
                 *,
                 config: Optional[SoCConfig] = None,
                 memory_map: Optional[MemoryMap] = None,
                 debug_interface=None,
                 scan=None,
                 label: Optional[str] = None) -> None:
        self._netlist = netlist
        self._config = config
        self._memory_map = memory_map
        self._debug_interface = debug_interface
        self._scan = scan
        self._label = label
        self._signature: Optional[str] = None

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config: SoCConfig,
                    label: Optional[str] = None) -> "Design":
        """Generate the SoC for ``config`` and wrap it.

        Designs built this way carry their :attr:`config` as a *rebuild
        spec*, which is what lets a :class:`~repro.api.ProcessExecutor`
        regenerate them inside worker processes instead of pickling whole
        netlists.
        """
        return cls.from_soc(build_soc(config), label=label)

    @classmethod
    def from_soc(cls, soc: SoC, label: Optional[str] = None) -> "Design":
        return cls(soc.cpu, config=soc.config, memory_map=soc.memory_map,
                   debug_interface=soc.debug_interface, scan=soc.scan,
                   label=label or soc.name)

    @classmethod
    def from_netlist(cls, netlist: Netlist,
                     memory_map: Optional[MemoryMap] = None,
                     label: Optional[str] = None) -> "Design":
        """Wrap a bare netlist (memory map falls back to its annotation)."""
        return cls(netlist,
                   memory_map=(memory_map if memory_map is not None
                               else netlist.annotations.get("memory_map")),
                   label=label or netlist.name)

    @classmethod
    def coerce(cls, target,
               memory_map: Optional[MemoryMap] = None,
               label: Optional[str] = None) -> "Design":
        """Build a :class:`Design` from any accepted target spelling.

        Accepts an existing ``Design`` (returned as-is unless a memory-map
        override forces a rewrap), a :class:`~repro.soc.soc_builder.SoC`, a
        bare :class:`~repro.netlist.module.Netlist`, a
        :class:`~repro.soc.config.SoCConfig`, or a named preset string
        (``"tiny"`` / ``"small"`` / ``"date13"``).
        """
        if isinstance(target, cls):
            if memory_map is None:
                return target
            return cls(target.netlist, config=target.config,
                       memory_map=memory_map,
                       debug_interface=target.debug_interface,
                       scan=target.scan, label=label or target.label)
        if isinstance(target, SoC):
            design = cls.from_soc(target, label=label)
            return design if memory_map is None else cls.coerce(
                design, memory_map=memory_map, label=label)
        if isinstance(target, Netlist):
            return cls.from_netlist(target, memory_map=memory_map, label=label)
        if isinstance(target, SoCConfig):
            design = cls.from_config(target, label=label)
            return design if memory_map is None else cls.coerce(
                design, memory_map=memory_map, label=label)
        if isinstance(target, str):
            return cls.coerce(SoCConfig.from_name(target),
                              memory_map=memory_map, label=label or target)
        raise TypeError(
            "analysis target must be a Design, SoC, Netlist, SoCConfig or "
            f"preset name, got {type(target).__name__}")

    # ------------------------------------------------------------------ #
    # read-only views
    # ------------------------------------------------------------------ #
    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def config(self) -> Optional[SoCConfig]:
        return self._config

    @property
    def memory_map(self) -> Optional[MemoryMap]:
        return self._memory_map

    @property
    def debug_interface(self):
        return self._debug_interface

    @property
    def scan(self):
        return self._scan

    @property
    def label(self) -> str:
        return self._label or self._netlist.name

    @property
    def name(self) -> str:
        return self._netlist.name

    @property
    def rebuild_spec(self) -> Optional[SoCConfig]:
        """The config a worker process can regenerate this design from."""
        return self._config

    @property
    def signature(self) -> str:
        """Stable content signature: netlist structure + memory map."""
        if self._signature is None:
            hasher = hashlib.sha256()
            hasher.update(netlist_signature(self._netlist).encode())
            hasher.update(b"\x00")
            hasher.update(memory_map_key(self._memory_map).encode())
            self._signature = hasher.hexdigest()
        return self._signature

    @property
    def compiled(self):
        """The design netlist's shared compiled execution IR.

        Compiled at most once per netlist signature (globally cached), so
        handing the same design — or structurally identical rebuilds of it —
        to many sessions, simulators or ATPG engines never re-levelizes the
        circuit.
        """
        from repro.netlist.compiled import get_compiled

        return get_compiled(self._netlist)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        stats = self._netlist.stats()
        if self._scan is not None:
            stats["scan_cells"] = self._scan.total_cells
            stats["scan_chains"] = len(self._scan.chains)
        return stats

    def __repr__(self) -> str:
        return (f"Design({self.label!r}, netlist={self._netlist.name!r}, "
                f"signature={self.signature[:12]}...)")
