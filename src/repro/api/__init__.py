"""Session/Design API: batch scenario sweeps over pluggable executors.

This package is the public face of the reproduction at scale::

    from repro.api import ScenarioGrid, Session

    session = Session(executor="thread")
    report = session.analyze("small")            # one design

    grid = (ScenarioGrid("tiny")
            .axis("debug", [True, False])
            .axis("effort", ["tie", "random"]))
    sweep = session.sweep(grid)                  # 4 scenario variants
    print(sweep.to_table())                      # per-scenario Table I + Δ

The pieces compose:

* :class:`Design` — immutable target handle with a stable content
  signature (netlist structure + memory map);
* :class:`Session` — owns the artifact cache, the executor backend and
  pass-selection defaults; ``analyze`` / ``sweep`` / ``iter_sweep``;
* :class:`ScenarioGrid` / :class:`Scenario` — declarative cartesian sweeps
  over SoC-variant axes plus the ATPG-effort axis;
* :class:`SerialExecutor` / :class:`ThreadExecutor` /
  :class:`ProcessExecutor` — interchangeable sweep backends;
* :class:`SweepResult` / :class:`SweepReport` — streamed per-scenario
  outcomes and the aggregated, serializable multi-scenario report.
"""

from repro.api.corpus import (DEFAULT_CORPUS_DIR, CorpusEntry, CorpusError,
                              CorpusOutcome, load_corpus, run_corpus)
from repro.api.design import Design
from repro.api.executors import (EXECUTORS, Executor, ProcessExecutor,
                                 SerialExecutor, ThreadExecutor,
                                 resolve_executor)
from repro.api.grid import Scenario, ScenarioGrid
from repro.api.options import (RunOptions, fold_legacy_kwargs,
                               reset_legacy_keyword_warnings, resolve_effort)
from repro.api.session import DEFAULT_CACHE_ENTRIES, Session
from repro.api.sweep import SweepReport, SweepResult

__all__ = [
    "Design",
    "RunOptions",
    "resolve_effort",
    "fold_legacy_kwargs",
    "reset_legacy_keyword_warnings",
    "Session",
    "Scenario",
    "ScenarioGrid",
    "SweepResult",
    "SweepReport",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "resolve_executor",
    "DEFAULT_CACHE_ENTRIES",
    "CorpusEntry",
    "CorpusError",
    "CorpusOutcome",
    "DEFAULT_CORPUS_DIR",
    "load_corpus",
    "run_corpus",
]
