"""Sweep results and their multi-scenario aggregation.

A sweep produces one :class:`SweepResult` per scenario — streamed as the
backend completes them — and a :class:`SweepReport` aggregating the full
grid: per-scenario Table-I rows, deltas against the first (baseline)
scenario, cache-reuse accounting, and JSON/CSV serialization so sweeps can
be persisted, diffed across runs and rendered later (``python -m repro
report sweep.json``).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.results import OnlineUntestableReport

#: Table-I row labels in presentation order (source rows of the summary).
_ROW_LABELS = ("Original", "Scan", "Debug", "Memory", "TOTAL")


@dataclass
class SweepResult:
    """Outcome of one scenario: its report, or the error that stopped it."""

    index: int
    label: str
    design_signature: Optional[str] = None
    effort: Optional[str] = None
    report: Optional[OnlineUntestableReport] = None
    elapsed_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.report is not None

    def row_counts(self) -> Dict[str, int]:
        """Table-I row label -> count (empty when the scenario failed)."""
        if not self.ok:
            return {}
        return {str(row["source"]): int(row["count"])
                for row in self.report.table_rows()}

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "label": self.label,
            "design_signature": self.design_signature,
            "effort": self.effort,
            "elapsed_seconds": self.elapsed_seconds,
            "error": self.error,
            "report": self.report.to_json_dict() if self.report else None,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "SweepResult":
        report = data.get("report")
        return cls(
            index=int(data["index"]),
            label=data["label"],
            design_signature=data.get("design_signature"),
            effort=data.get("effort"),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            error=data.get("error"),
            report=(OnlineUntestableReport.from_json_dict(report)
                    if report else None),
        )


@dataclass
class SweepReport:
    """Aggregated outcome of a whole scenario sweep."""

    results: List[SweepResult] = field(default_factory=list)
    grid_name: str = ""
    executor: str = "serial"
    elapsed_seconds: float = 0.0
    #: Artifact-cache activity *during this sweep* (deltas, not lifetime
    #: totals).  ``hits`` > 0 means at least one scenario replayed an
    #: artifact another scenario produced — cross-scenario reuse.
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def __iter__(self) -> Iterator[SweepResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def succeeded(self) -> List[SweepResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[SweepResult]:
        return [r for r in self.results if not r.ok]

    @property
    def baseline(self) -> Optional[SweepResult]:
        """The comparison baseline: the first successful scenario."""
        ordered = self.succeeded
        return ordered[0] if ordered else None

    def result_for(self, label: str) -> SweepResult:
        for result in self.results:
            if result.label == label:
                return result
        known = ", ".join(r.label for r in self.results) or "<none>"
        raise KeyError(f"no scenario labelled {label!r} in sweep "
                       f"(scenarios: {known})")

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def comparison_rows(self) -> List[Dict[str, object]]:
        """One row per scenario: Table-I counts plus deltas vs the baseline.

        ``delta_total`` is the scenario's on-line untestable total minus the
        baseline scenario's (None for the baseline itself and for failures).
        """
        base = self.baseline
        base_counts = base.row_counts() if base else {}
        rows: List[Dict[str, object]] = []
        for result in self.results:
            row: Dict[str, object] = {
                "scenario": result.label,
                "effort": result.effort,
                "ok": result.ok,
                "elapsed_seconds": result.elapsed_seconds,
            }
            if result.ok:
                counts = result.row_counts()
                row["total_faults"] = result.report.total_faults
                for label in _ROW_LABELS:
                    row[label.lower()] = counts.get(label, 0)
                row["percent"] = result.report.percentage(
                    counts.get("TOTAL", 0))
                row["delta_total"] = (
                    None if base is None or result.index == base.index
                    else counts.get("TOTAL", 0) - base_counts.get("TOTAL", 0))
            else:
                row["error"] = result.error
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    # rendering & serialization
    # ------------------------------------------------------------------ #
    def to_table(self) -> str:
        """Fixed-width multi-scenario comparison (per-scenario Table I)."""
        headers = ["scenario", "faults", "orig", "scan", "debug", "memory",
                   "total", "%", "Δtotal", "time"]
        lines: List[List[str]] = []
        for row in self.comparison_rows():
            if not row["ok"]:
                lines.append([str(row["scenario"]), "-", "-", "-", "-", "-",
                              "-", "-", "-",
                              f"FAILED: {row.get('error', '?')}"])
                continue
            delta = row["delta_total"]
            lines.append([
                str(row["scenario"]),
                f"{row['total_faults']:,}",
                f"{row['original']:,}",
                f"{row['scan']:,}",
                f"{row['debug']:,}",
                f"{row['memory']:,}",
                f"{row['total']:,}",
                f"{row['percent']:.2f}",
                "=" if delta is None else f"{delta:+,}",
                f"{row['elapsed_seconds']:.2f}s",
            ])
        widths = [max(len(h), *(len(line[i]) for line in lines)) if lines
                  else len(h) for i, h in enumerate(headers)]
        out = io.StringIO()
        title = self.grid_name or "sweep"
        out.write(f"Scenario sweep '{title}' "
                  f"({len(self.results)} scenarios, executor={self.executor}, "
                  f"{self.elapsed_seconds:.2f}s")
        hits = self.cache_stats.get("hits", 0)
        if hits:
            out.write(f", {hits} cached artifacts reused")
        out.write(")\n")
        header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for line in lines:
            out.write("  ".join(c.ljust(w)
                                for c, w in zip(line, widths)).rstrip() + "\n")
        return out.getvalue().rstrip("\n")

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "grid": self.grid_name,
            "executor": self.executor,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_stats": dict(self.cache_stats),
            "comparison": self.comparison_rows(),
            "scenarios": [r.to_json_dict() for r in self.results],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "SweepReport":
        return cls(
            results=[SweepResult.from_json_dict(entry)
                     for entry in data.get("scenarios", ())],
            grid_name=data.get("grid", ""),
            executor=data.get("executor", "serial"),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            cache_stats={k: int(v)
                         for k, v in (data.get("cache_stats") or {}).items()},
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        return cls.from_json_dict(json.loads(text))

    def to_csv(self) -> str:
        """Flat per-scenario CSV of the comparison rows (for spreadsheets)."""
        import csv

        columns = ["scenario", "effort", "ok", "total_faults", "original",
                   "scan", "debug", "memory", "total", "percent",
                   "delta_total", "elapsed_seconds", "error"]
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in self.comparison_rows():
            writer.writerow(row)
        return out.getvalue()
