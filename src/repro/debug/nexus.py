"""Nexus-class external debug unit generator.

In the paper's SoC (Fig. 3) the CPU's debug signals are driven by a
Nexus-compliant module sitting outside the core and reachable from the chip
pins.  This generator produces such a unit: it exposes the chip-level debug
pins on one side and, on the other, the 17 control signals the synthetic CPU
core expects plus capture registers for the CPU's observation buses.

The unit is used by the full-SoC example to show the chip-level view; the
identification flow itself only needs the CPU core, because that is the
fault universe the paper analyses.
"""

from __future__ import annotations

from typing import Dict, List

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Netlist
from repro.soc.debug_logic import DEBUG_CONTROL_PORTS
from repro.soc.generators import register_word, shift_register


def build_nexus_unit(observation_width: int = 32,
                     command_length: int = 24,
                     name: str = "nexus_unit") -> Netlist:
    """Generate the external debug unit.

    Ports
    -----
    inputs:
        ``nex_tck/nex_tms/nex_tdi/nex_trstn`` (chip-level JTAG pins),
        ``nex_enable``, ``cpu_gpr_obs[*]`` and ``cpu_spr_obs[*]`` (the CPU's
        observation buses).
    outputs:
        one port per entry of
        :data:`repro.soc.debug_logic.DEBUG_CONTROL_PORTS` (the signals driven
        into the CPU core) plus ``nex_tdo``.
    """
    b = NetlistBuilder(name)
    tck = b.add_input("nex_tck")
    tms = b.add_input("nex_tms")
    tdi = b.add_input("nex_tdi")
    trstn = b.add_input("nex_trstn")
    enable = b.add_input("nex_enable")
    clk = b.add_input("clk")
    gpr_obs = b.add_input_bus("cpu_gpr_obs", observation_width)
    spr_obs = b.add_input_bus("cpu_spr_obs", observation_width)

    tdo = b.add_output("nex_tdo")
    cpu_ports: Dict[str, str] = {
        port: b.add_output(f"cpu_{port}") for port in DEBUG_CONTROL_PORTS
    }

    # Command register: shifted in from TDI, decoded into the CPU control pins.
    command = shift_register(b, tdi, tck, enable, command_length, prefix="cmd",
                             reset_n=trstn)

    # Straight-through JTAG pins.
    b.buf(tck, output=cpu_ports["jtag_tck"])
    b.buf(tms, output=cpu_ports["jtag_tms"])
    b.buf(tdi, output=cpu_ports["jtag_tdi"])
    b.buf(trstn, output=cpu_ports["jtag_trstn"])

    # Command-decoded control strobes (each gated by the chip-level enable).
    decoded_order: List[str] = [
        "dbg_enable", "dbg_halt_req", "dbg_resume", "dbg_step", "dbg_reg_we",
        "dbg_sel0", "dbg_sel1", "dbg_sel2", "dbg_sel3", "dbg_bkpt_en",
        "dbg_mem_req", "dbg_reset_req", "dbg_wdata_ser",
    ]
    for index, port in enumerate(decoded_order):
        source = command[index % command_length]
        b.gate("AND2", source, enable, output=cpu_ports[port])

    # Observation capture registers: sample the CPU buses, expose the MSB of
    # the captured GPR value on TDO while shifting.
    captured_gpr = register_word(b, gpr_obs, clk, enable, prefix="cap_gpr",
                                 reset_n=trstn)
    captured_spr = register_word(b, spr_obs, clk, enable, prefix="cap_spr",
                                 reset_n=trstn)
    tdo_value = b.mux(tms, captured_gpr[-1], captured_spr[-1])
    b.buf(tdo_value, output=tdo)

    netlist = b.build()
    netlist.annotations["debug_interface"] = {
        "control_inputs": {"nex_tck": 0, "nex_tms": 0, "nex_tdi": 0,
                           "nex_trstn": 0, "nex_enable": 0},
        "observation_outputs": ["nex_tdo"],
    }
    return netlist
