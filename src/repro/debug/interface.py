"""Debug-interface specification and discovery.

The paper distinguishes the *control* side of the debug interface (signals an
external debugger drives into the CPU — tied to their mission-mode constants
once the debugger is gone, §3.2.1) from the *observation* side (buses the CPU
drives out purely for the debugger's benefit — left floating in the field,
§3.2.2).  :class:`DebugInterface` captures both sides plus the mission-mode
constant of every control input.

Discovery follows the paper's §4 workflow: the CPU generator annotates its
debug ports directly (the normal path), and — mirroring the manual analysis
on the industrial SoC — :func:`find_quiescent_inputs` shortlists suspect
control inputs from functional toggle-activity data collected while running
the SBST suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.netlist.module import Netlist


@dataclass
class DebugInterface:
    """Debug ports of a CPU core and their mission-mode configuration."""

    #: control input port -> constant logic value it holds in the field
    control_inputs: Dict[str, int] = field(default_factory=dict)
    #: output ports only ever read by the external debugger
    observation_outputs: List[str] = field(default_factory=list)

    @property
    def control_count(self) -> int:
        return len(self.control_inputs)

    @property
    def observation_count(self) -> int:
        return len(self.observation_outputs)

    def validate_against(self, netlist: Netlist) -> List[str]:
        """Return problems (missing ports, wrong directions); empty = clean."""
        problems = []
        for port in self.control_inputs:
            if port not in netlist.ports:
                problems.append(f"control input {port!r} not a port of {netlist.name!r}")
            elif netlist.ports[port] != "input":
                problems.append(f"control input {port!r} is not an input port")
        for port in self.observation_outputs:
            if port not in netlist.ports:
                problems.append(f"observation output {port!r} not a port of {netlist.name!r}")
            elif netlist.ports[port] != "output":
                problems.append(f"observation output {port!r} is not an output port")
        return problems


def discover_debug_interface(netlist: Netlist) -> Optional[DebugInterface]:
    """Read the debug interface the CPU generator annotated on the netlist."""
    spec = netlist.annotations.get("debug_interface")
    if spec is None:
        return None
    if isinstance(spec, DebugInterface):
        return spec
    return DebugInterface(
        control_inputs=dict(spec.get("control_inputs", {})),
        observation_outputs=list(spec.get("observation_outputs", [])),
    )


def find_quiescent_inputs(netlist: Netlist,
                          toggle_activity: Mapping[str, int],
                          exclude: Sequence[str] = ("clk", "clock", "reset", "rst"),
                          ) -> List[str]:
    """Input ports that never toggled while the functional test suite ran.

    ``toggle_activity`` maps net names to toggle counts (see
    :class:`repro.sbst.monitor.ToggleMonitor`).  Clock/reset-style ports are
    excluded by name, as are scan ports (always quiescent in mission mode but
    handled by the dedicated scan analysis).
    """
    scan_info = netlist.annotations.get("scan_insertion", {})
    scan_ports = set(scan_info.get("scan_in_ports", []))
    scan_ports.update(scan_info.get("scan_out_ports", []))
    scan_ports.add(scan_info.get("scan_enable_port", ""))

    quiescent = []
    for port in netlist.input_ports():
        lowered = port.lower()
        if any(token in lowered for token in exclude):
            continue
        if port in scan_ports:
            continue
        if toggle_activity.get(port, 0) == 0:
            quiescent.append(port)
    return quiescent
