"""Debug infrastructure: interface specification, JTAG TAP and Nexus-class
debug-unit generators, and quiescent-signal discovery."""

from repro.debug.interface import (
    DebugInterface,
    discover_debug_interface,
    find_quiescent_inputs,
)
from repro.debug.jtag import build_jtag_tap
from repro.debug.nexus import build_nexus_unit

__all__ = [
    "DebugInterface",
    "discover_debug_interface",
    "find_quiescent_inputs",
    "build_jtag_tap",
    "build_nexus_unit",
]
