"""Standalone JTAG TAP controller netlist generator.

Used by the full-SoC examples and tests: the same 16-state IEEE 1149.1 FSM
that :mod:`repro.soc.debug_logic` embeds in the CPU, packaged as its own
module with TCK/TMS/TDI/TRSTN inputs, a configurable instruction register and
TDO output.  In the mission configuration every one of these pins is pulled
to a constant, which is why the entire block contributes on-line functionally
untestable faults.
"""

from __future__ import annotations

from typing import List

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Netlist
from repro.soc.debug_logic import _TAP_STATES, _tap_next_state
from repro.soc.generators import shift_register, synthesize_function


def build_jtag_tap(ir_length: int = 4, dr_length: int = 8,
                   name: str = "jtag_tap") -> Netlist:
    """Generate a TAP controller with an IR of ``ir_length`` bits and a
    single data register of ``dr_length`` bits."""
    if ir_length < 1 or dr_length < 1:
        raise ValueError("ir_length and dr_length must be positive")

    b = NetlistBuilder(name)
    tck = b.add_input("tck")
    tms = b.add_input("tms")
    tdi = b.add_input("tdi")
    trstn = b.add_input("trstn")
    tdo = b.add_output("tdo")
    state_ports = b.add_output_bus("tap_state", 4)

    state_q = [b.new_net(f"tap_q{i}") for i in range(4)]
    fsm_inputs = state_q + [tms]
    for bit in range(4):
        def truth(code: int, output_bit: int = bit) -> int:
            return (_tap_next_state(code & 0xF, (code >> 4) & 1) >> output_bit) & 1

        next_bit = synthesize_function(b, fsm_inputs, truth, prefix=f"tapns{bit}")
        b.dff(next_bit, tck, q=state_q[bit], reset_n=trstn, name=f"tap_ff{bit}")
        b.buf(state_q[bit], output=state_ports[bit])

    def in_state(target: str) -> str:
        code = _TAP_STATES[target]
        bits = [state_q[i] if (code >> i) & 1 else b.inv(state_q[i]) for i in range(4)]
        return b.and_(*bits)

    shift_ir = in_state("SHIFT_IR")
    shift_dr = in_state("SHIFT_DR")

    ir_bits = shift_register(b, tdi, tck, shift_ir, ir_length, prefix="ir",
                             reset_n=trstn)
    dr_bits = shift_register(b, tdi, tck, shift_dr, dr_length, prefix="dr",
                             reset_n=trstn)

    # TDO multiplexes the tail of whichever register is shifting.
    tdo_value = b.mux(shift_ir, dr_bits[-1], ir_bits[-1])
    b.buf(tdo_value, output=tdo)

    netlist = b.build()
    netlist.annotations["debug_interface"] = {
        "control_inputs": {"tck": 0, "tms": 0, "tdi": 0, "trstn": 0},
        "observation_outputs": ["tdo"] + [f"tap_state[{i}]" for i in range(4)],
    }
    return netlist
