"""Command-line entry point: ``python -m repro``.

Builds one of the named synthetic SoC configurations, runs the analysis-pass
pipeline and prints the Table-I style summary (or a JSON document with the
rows, per-source counts and pass runtimes)::

    python -m repro small
    python -m repro tiny --passes scan_analysis,memory_analysis --json
    python -m repro date13 --effort tie --parallel --details
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import repro
from repro.core.report import render_source_details
from repro.faults.categories import source_label
from repro.pipeline import DEFAULT_REGISTRY
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=("Identify on-line functionally untestable stuck-at "
                     "faults in a generated processor core (Bernardi et "
                     "al., DATE 2013)."))
    parser.add_argument(
        "config", nargs="?", default="small",
        choices=sorted(SoCConfig.named_configs()),
        help="named SoC configuration to build (default: small)")
    parser.add_argument(
        "--passes", default=None, metavar="NAME[,NAME...]",
        help=("comma-separated analysis passes to run (dependencies are "
              "resolved automatically); default: the full paper flow. "
              "Use --list-passes to see what is registered"))
    parser.add_argument(
        "--effort", default="tie", choices=["tie", "random", "full"],
        help="ATPG effort of the structural engine (default: tie)")
    parser.add_argument(
        "--parallel", nargs="?", const=True, default=False, type=int,
        metavar="WORKERS",
        help=("run independent passes concurrently (optionally with an "
              "explicit worker count)"))
    parser.add_argument(
        "--json", action="store_true",
        help="emit a JSON document instead of the rendered table")
    parser.add_argument(
        "--details", action="store_true",
        help="also print the per-source breakdown with example faults")
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list the registered analysis passes and exit")
    return parser


def _list_passes() -> int:
    for pass_ in DEFAULT_REGISTRY.passes():
        source = source_label(pass_.source) if pass_.source is not None else "-"
        requires = ", ".join(pass_.requires) or "-"
        provides = ", ".join(pass_.provides) or "-"
        print(f"{pass_.name:<16} source={source:<14} "
              f"requires=[{requires}] provides=[{provides}]")
    return 0


def _report_as_json(report, config_name: str, elapsed: float) -> str:
    return json.dumps({
        "config": config_name,
        "netlist": report.netlist_name,
        "total_faults": report.total_faults,
        "baseline_untestable": len(report.baseline_untestable),
        "total_online_untestable": report.total_online_untestable,
        "table": report.table_rows(),
        "sources": [{
            "source": source_label(summary.source),
            "identified": len(summary.identified),
            "attributed": summary.count,
            "runtime_seconds": summary.runtime_seconds,
        } for summary in report.sources],
        "runtimes": report.runtimes,
        "elapsed_seconds": elapsed,
    }, indent=2)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_passes:
        return _list_passes()

    passes = ([name.strip() for name in args.passes.split(",") if name.strip()]
              if args.passes else None)
    if args.passes and not passes:
        print("error: --passes given but no pass names supplied",
              file=sys.stderr)
        return 2

    started = time.perf_counter()
    soc = build_soc(SoCConfig.from_name(args.config))
    try:
        report = repro.analyze(soc, passes=passes, effort=args.effort,
                               parallel=args.parallel)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    if args.json:
        print(_report_as_json(report, args.config, elapsed))
        return 0

    print(report.to_table())
    if args.details:
        print()
        print(render_source_details(report))
    print()
    print(f"({args.config}: {report.total_faults:,} faults analysed "
          f"in {elapsed:.2f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
