"""Command-line entry point: ``python -m repro``.

Three subcommands mirror the Session/Design API:

``analyze``
    Build one named SoC configuration, run the analysis-pass pipeline and
    print the Table-I style summary (or JSON).  For compatibility with the
    original CLI, the subcommand may be omitted::

        python -m repro analyze small
        python -m repro tiny --passes scan_analysis,memory_analysis --json
        python -m repro date13 --effort tie --parallel --details

``sweep``
    Expand a scenario grid (base config + axes) and run it through an
    executor backend, streaming per-scenario progress and printing the
    aggregated multi-scenario comparison::

        python -m repro sweep --base tiny --axis effort=tie,random
        python -m repro sweep --base small --axis debug=on,off \\
            --executor thread --out sweep.json

``report``
    Re-render a persisted sweep (table, JSON or CSV)::

        python -m repro report sweep.json --csv

``corpus``
    Run the golden scenario corpus and byte-compare every rendered Table I
    against its committed capture (``--update`` refreshes the captures
    intentionally)::

        python -m repro corpus
        python -m repro corpus --jobs 2 --backend process
        python -m repro corpus --update --only tiny_full

``analyze``, ``sweep`` and ``corpus`` accept ``--jobs N`` (plus
``--backend serial|thread|process``) to shard the fault-population
engines across workers — results are identical to the serial run.  The
same three subcommands accept ``--kernel auto|int|numpy`` to pick the
simulation kernel (:mod:`repro.simulation.kernels`; also available as a
scenario axis: ``--axis kernel=int,numpy``) — kernels are byte-identical
too, only speed changes.

``analyze`` and ``sweep`` accept ``--fault-model stuck_at|transition`` to
select the fault universe (``sweep`` also takes it as a scenario axis:
``--axis fault_model=stuck_at,transition``); for ``corpus`` the flag
restricts the run to the entries pinned under that model.

``analyze`` and ``sweep`` also accept ``--static-prune`` /
``--no-static-prune`` to control the static pre-PODEM untestability
pruning (FULL effort only; default on), and the ``static`` subcommand
dumps the underlying per-net SCOAP testability numbers::

    python -m repro static tiny --limit 10
    python -m repro static small --nets alu_out,pc_q --json

``analyze``, ``sweep`` and ``corpus`` accept ``--store DIR`` to attach a
durable artifact store (:mod:`repro.store`): pass results persist under
DIR and replay across runs and processes.  ``cache`` inspects and prunes
such a store::

    python -m repro analyze tiny --store ~/.cache/repro
    python -m repro cache ls --store ~/.cache/repro
    python -m repro cache gc --store ~/.cache/repro --max-bytes 500000000

``serve`` starts the asyncio analysis service (:mod:`repro.service`);
``submit`` and ``jobs`` talk to it::

    python -m repro serve --port 7321 --store ~/.cache/repro
    python -m repro submit analyze --port 7321 --design tiny
    python -m repro submit sweep --port 7321 --base tiny \\
        --axis effort=tie,random --stream
    python -m repro jobs --port 7321
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.api import EXECUTORS, RunOptions, ScenarioGrid, Session
from repro.api.corpus import (DEFAULT_CORPUS_DIR, CorpusError, diff_text,
                              run_corpus)
from repro.api.sweep import SweepReport
from repro.atpg.engine import AtpgEffort
from repro.atpg.portfolio import atpg_backend_names
from repro.core.report import render_source_details
from repro.faults.categories import source_label
from repro.faults.models import fault_model_names
from repro.pipeline import DEFAULT_REGISTRY
from repro.simulation.kernels import KERNEL_CHOICES, kernel_info
from repro.simulation.sharded import SHARD_BACKENDS
from repro.soc.config import SoCConfig

COMMANDS = ("analyze", "sweep", "report", "corpus", "static",
            "serve", "submit", "jobs", "cache", "backends")

#: Default TCP port of the analysis service (``repro serve``).
DEFAULT_SERVICE_PORT = 7321


def _add_fault_model_argument(parser: argparse.ArgumentParser,
                              help_text: str) -> None:
    parser.add_argument(
        "--fault-model", default=None, dest="fault_model",
        choices=list(fault_model_names()), help=help_text)


def _add_static_prune_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--static-prune", dest="static_prune", default=None,
        action=argparse.BooleanOptionalAction,
        help=("pre-classify statically proven untestable faults before "
              "PODEM (FULL effort only; default: on)"))


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help=("durable artifact store directory (or 'backend:location' "
              "spec); pass results persist there and replay across runs"))


def _add_endpoint_arguments(parser: argparse.ArgumentParser,
                            default_port: int) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="service host (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=default_port, metavar="PORT",
        help=f"service port (default: {default_port})")


def _add_sharding_arguments(parser: argparse.ArgumentParser) -> None:
    """The fault-population sharding knobs shared by several subcommands."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=("shard the fault-population engines over N workers "
              "(identical results; default: serial)"))
    parser.add_argument(
        "--backend", default=None, choices=list(SHARD_BACKENDS),
        help=("worker backend for --jobs (default: process where fork is "
              "available, else thread)"))
    parser.add_argument(
        "--pool", default=None, choices=["persistent", "ephemeral"],
        help=("worker-pool lifecycle for --jobs: 'persistent' keeps one "
              "warm pool (with installed netlists and job state) across "
              "calls, 'ephemeral' spins workers per call (identical "
              "results; default: ephemeral)"))
    parser.add_argument(
        "--chunk", type=int, default=None, metavar="N",
        help=("work-stealing chunk size (faults per stolen task) for the "
              "persistent pool (identical results; default: auto)"))


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", default=None, choices=list(KERNEL_CHOICES),
        help=("simulation kernel (identical results; default: auto = "
              "numpy when installed, else int)"))


def _add_atpg_arguments(parser: argparse.ArgumentParser) -> None:
    """The ATPG portfolio knobs shared by analyze/sweep/corpus."""
    parser.add_argument(
        "--atpg-backend", dest="atpg_backend", default=None,
        choices=list(atpg_backend_names()),
        help=("ATPG portfolio backend for the FULL-effort search phase "
              "(identical verdicts; default: podem)"))
    parser.add_argument(
        "--atpg-seed", dest="atpg_seed", type=int, default=None,
        metavar="N",
        help=("seed for randomized ATPG backends such as podem-restart "
              "(identical verdicts under every seed; default: the "
              "engine seed)"))


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=("Identify on-line functionally untestable stuck-at "
                     "faults in generated processor cores (Bernardi et "
                     "al., DATE 2013)."))
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="analyze one SoC configuration")
    analyze.add_argument(
        "config", nargs="?", default="small",
        choices=sorted(SoCConfig.named_configs()),
        help="named SoC configuration to build (default: small)")
    analyze.add_argument(
        "--passes", default=None, metavar="NAME[,NAME...]",
        help=("comma-separated analysis passes to run (dependencies are "
              "resolved automatically); default: the full paper flow. "
              "Use --list-passes to see what is registered"))
    analyze.add_argument(
        "--effort", default="tie",
        choices=[e.value for e in AtpgEffort],
        help="ATPG effort of the structural engine (default: tie)")
    analyze.add_argument(
        "--parallel", nargs="?", const=True, default=False, type=int,
        metavar="WORKERS",
        help=("run independent passes concurrently (optionally with an "
              "explicit worker count)"))
    analyze.add_argument(
        "--json", action="store_true",
        help="emit a JSON document instead of the rendered table")
    analyze.add_argument(
        "--details", action="store_true",
        help="also print the per-source breakdown with example faults")
    analyze.add_argument(
        "--list-passes", action="store_true",
        help="list the registered analysis passes and exit")
    _add_fault_model_argument(
        analyze, "fault model to enumerate and classify (default: stuck_at)")
    _add_static_prune_argument(analyze)
    _add_sharding_arguments(analyze)
    _add_kernel_argument(analyze)
    _add_atpg_arguments(analyze)
    _add_store_argument(analyze)

    sweep = sub.add_parser(
        "sweep", help="run a scenario grid through an executor backend")
    sweep.add_argument(
        "--base", default="tiny",
        choices=sorted(SoCConfig.named_configs()),
        help="base SoC configuration the axes vary (default: tiny)")
    sweep.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2[,...]",
        help=("a scenario axis, e.g. effort=tie,random / debug=on,off / "
              "scan=on,off / size=tiny,small / cpu.mult_width=0,8 "
              "(repeatable; cartesian product)"))
    sweep.add_argument(
        "--executor", default="serial", choices=sorted(EXECUTORS),
        help="execution backend for the scenarios (default: serial)")
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for the thread/process backends")
    sweep.add_argument(
        "--passes", default=None, metavar="NAME[,NAME...]",
        help="analysis passes to run per scenario (default: full flow)")
    sweep.add_argument(
        "--json", action="store_true",
        help="emit the aggregated sweep report as JSON on stdout")
    sweep.add_argument(
        "--csv", action="store_true",
        help="emit the per-scenario comparison as CSV on stdout")
    sweep.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON sweep report to FILE")
    sweep.add_argument(
        "--quiet", action="store_true",
        help="suppress per-scenario progress lines on stderr")
    _add_fault_model_argument(
        sweep, ("default fault model for every scenario (also available as "
                "a scenario axis: --axis fault_model=stuck_at,transition)"))
    _add_static_prune_argument(sweep)
    _add_sharding_arguments(sweep)
    _add_kernel_argument(sweep)
    _add_atpg_arguments(sweep)
    _add_store_argument(sweep)

    static = sub.add_parser(
        "static",
        help="dump the static netlist analysis (SCOAP testability numbers)")
    static.add_argument(
        "config", nargs="?", default="small",
        choices=sorted(SoCConfig.named_configs()),
        help="named SoC configuration to analyse (default: small)")
    static.add_argument(
        "--nets", default=None, metavar="NAME[,NAME...]",
        help="restrict the dump to these nets (comma-separated)")
    static.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="max nets listed, hardest-to-control first (default: 20; 0=all)")
    static.add_argument(
        "--json", action="store_true",
        help="emit the dump as JSON instead of a table")

    corpus = sub.add_parser(
        "corpus",
        help="run the golden scenario corpus and diff every Table I")
    corpus.add_argument(
        "--dir", default=str(DEFAULT_CORPUS_DIR), metavar="DIR",
        help=f"corpus directory (default: {DEFAULT_CORPUS_DIR})")
    corpus.add_argument(
        "--only", action="append", default=[], metavar="NAME",
        help="restrict to the named corpus entries (repeatable)")
    corpus.add_argument(
        "--update", action="store_true",
        help="rewrite the golden captures instead of diffing against them")
    corpus.add_argument(
        "--json", action="store_true",
        help="emit the per-entry outcomes as JSON on stdout")
    corpus.add_argument(
        "--quiet", action="store_true",
        help="suppress per-entry progress lines on stderr")
    _add_fault_model_argument(
        corpus, ("restrict the run to entries pinned under this fault "
                 "model (a filter, never an override)"))
    _add_static_prune_argument(corpus)
    _add_sharding_arguments(corpus)
    _add_kernel_argument(corpus)
    _add_atpg_arguments(corpus)
    _add_store_argument(corpus)

    backends = sub.add_parser(
        "backends",
        help=("list every registered backend: fault models, simulation "
              "kernels, store backends and ATPG backends"))
    backends.add_argument(
        "--json", action="store_true",
        help="emit the registry listing as JSON")

    report = sub.add_parser(
        "report", help="re-render a persisted sweep report")
    report.add_argument("file", help="JSON file written by sweep --out/--json")
    report.add_argument(
        "--json", action="store_true", help="re-emit the JSON document")
    report.add_argument(
        "--csv", action="store_true", help="emit the comparison as CSV")

    serve = sub.add_parser(
        "serve", help="run the asyncio analysis service (repro.service)")
    _add_endpoint_arguments(serve, DEFAULT_SERVICE_PORT)
    serve.add_argument(
        "--max-queue", type=int, default=8, metavar="N",
        help="pending-job bound before submissions are rejected (default: 8)")
    serve.add_argument(
        "--quota", type=int, default=2, metavar="N",
        help="max live (queued+running) jobs per client (default: 2)")
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent job workers (default: 1)")
    _add_store_argument(serve)

    submit = sub.add_parser(
        "submit", help="submit a job to a running analysis service")
    submit.add_argument(
        "kind", choices=("analyze", "sweep"), help="job kind to submit")
    _add_endpoint_arguments(submit, DEFAULT_SERVICE_PORT)
    submit.add_argument(
        "--design", default="date13",
        choices=sorted(SoCConfig.named_configs()),
        help="SoC configuration for analyze jobs (default: date13)")
    submit.add_argument(
        "--base", default="tiny",
        choices=sorted(SoCConfig.named_configs()),
        help="base SoC configuration for sweep jobs (default: tiny)")
    submit.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2[,...]",
        help="scenario axis for sweep jobs (repeatable)")
    submit.add_argument(
        "--effort", default=None, choices=[e.value for e in AtpgEffort],
        help="ATPG effort (default: the service session's default)")
    submit.add_argument(
        "--client", default="cli", metavar="ID",
        help="client identity for quota accounting (default: cli)")
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without waiting for completion")
    submit.add_argument(
        "--stream", action="store_true",
        help=("follow the job's event stream; each completed sweep "
              "scenario prints its Table I on stdout as it arrives"))
    submit.add_argument(
        "--json", action="store_true",
        help="emit the job result as JSON instead of the rendered table")
    submit.add_argument(
        "--quiet", action="store_true",
        help="suppress progress lines on stderr")
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up waiting for the job after this long (default: 600)")
    _add_fault_model_argument(
        submit, "fault model for analyze jobs (default: stuck_at)")
    _add_static_prune_argument(submit)

    jobs = sub.add_parser(
        "jobs", help="list the jobs of a running analysis service")
    _add_endpoint_arguments(jobs, DEFAULT_SERVICE_PORT)
    jobs.add_argument(
        "--json", action="store_true",
        help="emit the job list (and service stats) as JSON")

    cache = sub.add_parser(
        "cache", help="inspect / garbage-collect a durable artifact store")
    cache.add_argument(
        "action", choices=("ls", "gc", "prune"),
        help=("ls: list stored artifacts; gc: drop debris + apply the "
              "retention policy; prune: apply only the size/age bounds"))
    cache.add_argument(
        "--store", required=True, metavar="DIR",
        help="artifact store directory (or 'backend:location' spec)")
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="retention: total artifact bytes to keep (LRU beyond that)")
    cache.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="retention: drop artifacts unused for longer than this")
    cache.add_argument(
        "--json", action="store_true",
        help="emit the listing / prune outcome as JSON")

    return parser


def _normalize_argv(argv: List[str]) -> List[str]:
    """Keep the pre-subcommand CLI working: default to ``analyze``."""
    if argv and argv[0] in COMMANDS:
        return argv
    if argv and argv[0] in ("-h", "--help"):
        return argv
    return ["analyze", *argv]


# --------------------------------------------------------------------- #
# analyze
# --------------------------------------------------------------------- #
def _list_passes() -> int:
    for pass_ in DEFAULT_REGISTRY.passes():
        source = source_label(pass_.source) if pass_.source is not None else "-"
        requires = ", ".join(pass_.requires) or "-"
        provides = ", ".join(pass_.provides) or "-"
        print(f"{pass_.name:<16} source={source:<14} "
              f"requires=[{requires}] provides=[{provides}]")
    return 0


def _split_passes(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [name.strip() for name in spec.split(",") if name.strip()]


def _kernel_label(spec) -> str:
    """Human-readable resolved-kernel blurb, e.g. ``numpy 2.4.6``."""
    info = kernel_info(spec)
    version = info.get("numpy_version")
    return f"{info['kernel']} {version}" if version else info["kernel"]


def _report_as_json(report, config_name: str, elapsed: float,
                    kernel=None) -> str:
    # Keep the original CLI summary contract (counts, not fault lists);
    # the full fault populations are available via report.to_json() /
    # the sweep subcommand's persisted documents.
    return json.dumps({
        "config": config_name,
        "netlist": report.netlist_name,
        **kernel_info(kernel),
        "fault_model": report.fault_model,
        "total_faults": report.total_faults,
        "baseline_untestable": len(report.baseline_untestable),
        "total_online_untestable": report.total_online_untestable,
        "table": report.table_rows(),
        "sources": [{
            "source": source_label(summary.source),
            "identified": len(summary.identified),
            "attributed": summary.count,
            "runtime_seconds": summary.runtime_seconds,
        } for summary in report.sources],
        "runtimes": report.runtimes,
        "elapsed_seconds": elapsed,
    }, indent=2)


def _cmd_analyze(args) -> int:
    if args.list_passes:
        return _list_passes()

    passes = _split_passes(args.passes)
    if args.passes and not passes:
        print("error: --passes given but no pass names supplied",
              file=sys.stderr)
        return 2

    started = time.perf_counter()
    session = Session(parallel_passes=args.parallel,
                      options=RunOptions(
                          effort=args.effort, jobs=args.jobs,
                          shard_backend=args.backend, kernel=args.kernel,
                          fault_model=args.fault_model,
                          static_prune=args.static_prune,
                          store=args.store,
                          atpg_backend=args.atpg_backend,
                          atpg_seed=args.atpg_seed,
                          pool=args.pool, chunk=args.chunk))
    try:
        report = session.analyze(args.config, passes=passes)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    session.cache.flush()
    elapsed = time.perf_counter() - started

    if args.json:
        print(_report_as_json(report, args.config, elapsed,
                              kernel=args.kernel))
        return 0

    print(report.to_table())
    if args.details:
        print()
        print(render_source_details(report))
    print()
    summary = (f"({args.config}: {report.total_faults:,} faults analysed "
               f"in {elapsed:.2f}s; kernel: {_kernel_label(args.kernel)}")
    if args.store:
        stats = session.cache_stats
        summary += (f"; store: {stats.get('store_hits', 0)} hits, "
                    f"{stats.get('store_misses', 0)} misses, "
                    f"{stats.get('store_writes', 0)} writes, "
                    f"{stats.get('store_corruptions', 0)} corruptions")
    print(summary + ")")
    return 0


# --------------------------------------------------------------------- #
# sweep
# --------------------------------------------------------------------- #
def _parse_axis_value(text: str) -> object:
    lowered = text.strip().lower()
    if lowered in ("true", "on", "yes"):
        return True
    if lowered in ("false", "off", "no"):
        return False
    try:
        return int(lowered)
    except ValueError:
        return text.strip()


def _build_grid(args) -> ScenarioGrid:
    grid = ScenarioGrid(args.base)
    for spec in args.axis:
        name, sep, values = spec.partition("=")
        if not sep or not values.strip():
            raise ValueError(
                f"bad --axis {spec!r}; expected NAME=VALUE[,VALUE...]")
        grid.axis(name.strip(),
                  [_parse_axis_value(v) for v in values.split(",") if v.strip()])
    return grid


def _cmd_sweep(args) -> int:
    try:
        grid = _build_grid(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    session = Session(executor=args.executor, max_workers=args.workers,
                      options=RunOptions(
                          jobs=args.jobs, shard_backend=args.backend,
                          kernel=args.kernel,
                          fault_model=args.fault_model,
                          static_prune=args.static_prune,
                          store=args.store,
                          atpg_backend=args.atpg_backend,
                          atpg_seed=args.atpg_seed,
                          pool=args.pool, chunk=args.chunk))
    passes = _split_passes(args.passes)

    if not args.quiet:
        print(f"sweeping {len(grid)} scenarios of '{args.base}' "
              f"on the {args.executor} backend ...", file=sys.stderr)

    done = []

    def progress(result) -> None:
        done.append(result)
        if not args.quiet:
            status = "ok" if result.ok else f"FAILED ({result.error})"
            print(f"  [{len(done)}/{len(grid)}] {result.label}: {status} "
                  f"({result.elapsed_seconds:.2f}s)", file=sys.stderr)

    report = session.sweep(grid, passes=passes, on_result=progress)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        if not args.quiet:
            print(f"wrote {args.out}", file=sys.stderr)

    if args.json:
        print(report.to_json())
    elif args.csv:
        print(report.to_csv(), end="")
    else:
        print(report.to_table())
    return 0 if not report.failed else 1


# --------------------------------------------------------------------- #
# corpus
# --------------------------------------------------------------------- #
def _cmd_corpus(args) -> int:
    try:
        outcomes = run_corpus(args.dir, jobs=args.jobs,
                              shard_backend=args.backend,
                              kernel=args.kernel,
                              update=args.update, only=args.only or None,
                              fault_model=args.fault_model,
                              static_prune=args.static_prune,
                              store=args.store,
                              atpg_backend=args.atpg_backend,
                              atpg_seed=args.atpg_seed,
                              pool=args.pool, chunk=args.chunk)
    except CorpusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = [outcome for outcome in outcomes if not outcome.ok]
    if not args.quiet:
        for outcome in outcomes:
            print(f"  {outcome.name:<24} {outcome.status:<14} "
                  f"({outcome.elapsed_seconds:.2f}s)", file=sys.stderr)
        for outcome in failed:
            if outcome.status == "diff":
                print(f"--- Table I diff for {outcome.name} ---",
                      file=sys.stderr)
                print(diff_text(outcome), file=sys.stderr)
            elif outcome.status == "missing-golden":
                print(f"--- no golden capture for {outcome.name}; run "
                      f"'python -m repro corpus --update --only "
                      f"{outcome.name}' to create it ---", file=sys.stderr)

    if args.json:
        print(json.dumps([{
            "name": outcome.name,
            "status": outcome.status,
            "elapsed_seconds": round(outcome.elapsed_seconds, 4),
        } for outcome in outcomes], indent=2))
    else:
        verb = "updated" if args.update else "checked"
        print(f"corpus: {len(outcomes)} entries {verb}, "
              f"{len(failed)} failures")
    return 1 if failed else 0


# --------------------------------------------------------------------- #
# static
# --------------------------------------------------------------------- #
def _cmd_static(args) -> int:
    from repro.analysis import INF, get_static_analysis
    from repro.api.design import Design

    design = Design.coerce(args.config)
    static = get_static_analysis(design.netlist)
    compiled = static.compiled
    names = compiled.net_names

    if args.nets:
        wanted = [name.strip() for name in args.nets.split(",")
                  if name.strip()]
        unknown = [name for name in wanted if name not in compiled.net_id]
        if unknown:
            print(f"error: unknown net(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        ids = [compiled.net_id[name] for name in wanted]
    else:
        # Hardest-to-control first — the nets PODEM struggles with — with
        # the net name breaking ties so the listing is deterministic.
        def hardness(nid: int) -> tuple:
            cc0, cc1 = static.scoap.cc0[nid], static.scoap.cc1[nid]
            return (-min(max(cc0, cc1), INF), names[nid])

        ids = sorted(range(compiled.n_nets), key=hardness)
        if args.limit:
            ids = ids[:args.limit]

    def fmt(cost: int) -> str:
        return "inf" if cost >= INF else str(cost)

    rows = [{"net": names[nid],
             "cc0": static.scoap.cc0[nid],
             "cc1": static.scoap.cc1[nid],
             "co": static.scoap.co[nid]} for nid in ids]

    if args.json:
        print(json.dumps({
            "config": args.config,
            "netlist": design.netlist.name,
            "n_nets": compiled.n_nets,
            "learned_implications": static.implications.n_edges,
            "nets": rows,
        }, indent=2))
        return 0

    width = max([len(row["net"]) for row in rows], default=3)
    print(f"{design.netlist.name}: {compiled.n_nets} nets, "
          f"{static.implications.n_edges} learned implications")
    print(f"{'net':<{width}}  {'CC0':>6} {'CC1':>6} {'CO':>6}")
    for row in rows:
        print(f"{row['net']:<{width}}  {fmt(row['cc0']):>6} "
              f"{fmt(row['cc1']):>6} {fmt(row['co']):>6}")
    return 0


# --------------------------------------------------------------------- #
# service: serve / submit / jobs
# --------------------------------------------------------------------- #
def _cmd_serve(args) -> int:
    from repro.service import AnalysisService

    service = AnalysisService(host=args.host, port=args.port,
                              store=args.store,
                              max_queue=args.max_queue,
                              max_jobs_per_client=args.quota,
                              workers=args.workers)

    def announce(svc: AnalysisService) -> None:
        # One parseable readiness line on stdout — scripts and CI poll for
        # it (and read the port back when --port 0 asked the kernel).
        print(f"repro-service listening on {svc.host}:{svc.port}",
              flush=True)

    try:
        service.run(ready=announce)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 2
    print("repro-service drained and stopped", flush=True)
    return 0


def _build_submit_spec(args) -> dict:
    if args.kind == "analyze":
        spec = {"design": args.design}
    else:
        axes = {}
        for axis_spec in args.axis:
            name, sep, values = axis_spec.partition("=")
            if not sep or not values.strip():
                raise ValueError(
                    f"bad --axis {axis_spec!r}; expected NAME=VALUE[,VALUE...]")
            axes[name.strip()] = [_parse_axis_value(v)
                                  for v in values.split(",") if v.strip()]
        spec = {"base": args.base, "axes": axes}
    if args.effort is not None:
        spec["effort"] = args.effort
    if args.fault_model is not None and args.kind == "analyze":
        spec["fault_model"] = args.fault_model
    if args.static_prune is not None and args.kind == "analyze":
        spec["static_prune"] = args.static_prune
    return spec


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        spec = _build_submit_spec(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    client = ServiceClient(args.host, args.port, timeout=args.timeout,
                           client_id=args.client)
    try:
        job = client.submit(args.kind, spec)
    except ServiceError as exc:
        hint = (f" (retry after {exc.retry_after:.1f}s)"
                if exc.retry_after else "")
        print(f"error: submission rejected: {exc}{hint}", file=sys.stderr)
        return 3 if exc.code in ("queue_full", "quota_exceeded") else 2

    if not args.quiet:
        print(f"submitted {job['id']} ({args.kind}) as {args.client!r}",
              file=sys.stderr)
    if args.no_wait:
        print(job["id"])
        return 0

    try:
        if args.stream:
            final_state = None
            for event in client.stream(job["id"]):
                kind = event.get("event")
                if kind == "scenario":
                    if event.get("table"):
                        # The streamed per-scenario Table I, byte-exact —
                        # what the corpus goldens pin.
                        print(event["table"], flush=True)
                    if not args.quiet:
                        status = ("ok" if event.get("ok")
                                  else f"FAILED ({event.get('error')})")
                        print(f"  [{event.get('index')}] "
                              f"{event.get('label')}: {status} "
                              f"({event.get('elapsed_seconds', 0.0):.2f}s)",
                              file=sys.stderr)
                elif kind == "done":
                    final_state = event.get("state")
        else:
            final_state = client.wait(job["id"],
                                      timeout=args.timeout)["state"]
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    outcome = client.result(job["id"])
    if final_state != "done":
        print(f"error: job {job['id']} ended "
              f"{outcome['job'].get('state')}: "
              f"{outcome['job'].get('error')}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(outcome["result"], indent=2))
    elif not args.stream:
        print(outcome["result"]["table"])
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port, timeout=30.0)
    try:
        jobs = client.jobs()
        stats = client.stats()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps({"jobs": jobs, "stats": stats}, indent=2))
        return 0
    if not jobs:
        print("no jobs")
    else:
        print(f"{'id':<10} {'kind':<8} {'state':<10} {'client':<12} "
              f"{'events':>6}  error")
        for job in jobs:
            print(f"{job['id']:<10} {job['kind']:<8} {job['state']:<10} "
                  f"{job['client']:<12} {job['events']:>6}  "
                  f"{job['error'] or '-'}")
    queue_stats = stats.get("jobs", {})
    print(f"(queued={queue_stats.get('queued', 0)} "
          f"running={queue_stats.get('running', 0)} "
          f"done={queue_stats.get('done', 0)} "
          f"failed={queue_stats.get('failed', 0)} "
          f"cancelled={queue_stats.get('cancelled', 0)}; "
          f"draining={stats.get('draining', False)})")
    return 0


# --------------------------------------------------------------------- #
# cache: ls / gc / prune over a durable artifact store
# --------------------------------------------------------------------- #
def _cmd_cache(args) -> int:
    from repro.store import resolve_store

    try:
        store = resolve_store(args.store)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "ls":
        entries = store.entries()
        total = sum(entry.size_bytes for entry in entries)
        if args.json:
            print(json.dumps({
                "store": args.store,
                "entries": [{
                    "signature": entry.signature,
                    "config": entry.key[1],
                    "pass": entry.pass_name,
                    "size_bytes": entry.size_bytes,
                    "created": entry.created,
                    "last_used": entry.last_used,
                } for entry in entries],
                "total_bytes": total,
                "stats": store.stats,
                **kernel_info(),
            }, indent=2))
            return 0
        if not entries:
            print(f"store {args.store}: empty "
                  f"(kernel: {_kernel_label(None)})")
            return 0
        now = time.time()
        print(f"{'pass':<18} {'signature':<14} {'size':>10}  {'idle':>8}")
        for entry in sorted(entries, key=lambda e: (e.pass_name, e.key)):
            idle = max(0.0, now - entry.last_used)
            print(f"{entry.pass_name:<18} {entry.signature[:12] + '..':<14} "
                  f"{entry.size_bytes:>10,}  {idle:>7.0f}s")
        print(f"({len(entries)} artifacts, {total:,} bytes; "
              f"kernel: {_kernel_label(None)})")
        return 0

    # gc / prune
    if args.action == "gc":
        store.max_bytes = (args.max_bytes if args.max_bytes is not None
                           else store.max_bytes)
        store.max_age_seconds = (args.max_age if args.max_age is not None
                                 else store.max_age_seconds)
        result = store.gc()
    else:
        result = store.prune(max_bytes=args.max_bytes,
                             max_age_seconds=args.max_age)
    if args.json:
        print(json.dumps({
            "action": args.action,
            "removed_entries": result.removed_entries,
            "removed_bytes": result.removed_bytes,
            "removed_debris": result.removed_debris,
            "kept_entries": result.kept_entries,
            "kept_bytes": result.kept_bytes,
            "reasons": result.reasons,
        }, indent=2))
    else:
        print(f"{args.action}: removed {result.removed_entries} artifacts "
              f"({result.removed_bytes:,} bytes) and "
              f"{result.removed_debris} debris files; kept "
              f"{result.kept_entries} ({result.kept_bytes:,} bytes)")
    return 0


# --------------------------------------------------------------------- #
# backends: one listing of every registry
# --------------------------------------------------------------------- #
def _cmd_backends(args) -> int:
    from repro.atpg.portfolio import ATPG_BACKENDS
    from repro.faults.models import resolve_fault_model
    from repro.simulation.kernels import numpy_available
    from repro.store.base import STORE_BACKENDS

    numpy_note = ("numpy available" if numpy_available()
                  else "numpy NOT installed — falls back to int")
    registries = {
        "fault_models": [
            {"name": name, "note": resolve_fault_model(name).label}
            for name in fault_model_names()],
        "kernels": [
            {"name": "auto", "note": f"pick the best available ({numpy_note})"},
            {"name": "int", "note": "pure-Python bit-plane kernel, always available"},
            {"name": "numpy", "note": numpy_note},
        ],
        "store_backends": [
            {"name": name, "note": "resolves 'name:location' store specs"}
            for name in sorted(STORE_BACKENDS.names())],
        "atpg_backends": [
            {"name": name, "note": ATPG_BACKENDS[name].description}
            for name in sorted(ATPG_BACKENDS.names())],
    }

    if args.json:
        print(json.dumps(registries, indent=2))
        return 0
    titles = {"fault_models": "fault models (--fault-model)",
              "kernels": "simulation kernels (--kernel)",
              "store_backends": "store backends (--store)",
              "atpg_backends": "ATPG backends (--atpg-backend)"}
    for key, entries in registries.items():
        print(f"{titles[key]}:")
        for entry in entries:
            print(f"  {entry['name']:<16} {entry['note']}")
        print()
    return 0


# --------------------------------------------------------------------- #
# report
# --------------------------------------------------------------------- #
def _cmd_report(args) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            report = SweepReport.from_json(handle.read())
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load sweep report {args.file!r}: {exc}",
              file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    elif args.csv:
        print(report.to_csv(), end="")
    else:
        print(report.to_table())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args = _build_parser().parse_args(_normalize_argv(argv))
    handler = {"analyze": _cmd_analyze,
               "sweep": _cmd_sweep,
               "report": _cmd_report,
               "corpus": _cmd_corpus,
               "static": _cmd_static,
               "serve": _cmd_serve,
               "submit": _cmd_submit,
               "jobs": _cmd_jobs,
               "cache": _cmd_cache,
               "backends": _cmd_backends}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
