"""The pluggable artifact-store contract.

An *artifact store* is the durable tier below the in-memory
:class:`~repro.pipeline.cache.ArtifactCache`: it persists pass results
under the same ``(netlist signature, config key, pass name)`` tuple so a
repeated design hits warm artifacts **across processes and machines**,
not just within one session.

The contract is deliberately narrow — five methods — so a remote backend
(an object store, a shared cache service) can slot in behind the same
interface:

* :meth:`~ArtifactStore.get` / :meth:`~ArtifactStore.put` move opaque
  Python values (pass results) in and out;
* :meth:`~ArtifactStore.lock` single-flights ``get_or_compute`` across
  *processes* — the in-memory cache already single-flights threads;
* :meth:`~ArtifactStore.entries` enumerates what is stored (``repro
  cache ls``);
* :meth:`~ArtifactStore.prune` applies a size/age retention policy.

:func:`resolve_store` is the one spelling the rest of the package uses:
it coerces ``None`` / a store instance / a path string / a
``"backend:location"`` spec through the :data:`STORE_BACKENDS` registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Protocol,
                    Tuple, runtime_checkable)

from repro.core.registry import Registry

#: The cache-key tuple shared with the in-memory tier:
#: (netlist signature, facet-restricted config key, pass name).
StoreKey = Tuple[str, str, str]


class StoreError(RuntimeError):
    """A store operation failed in a way the caller should see.

    Routine faults — a missing entry, a corrupt file (quarantined and
    counted), a value that cannot be serialized — are *not* errors: the
    store degrades to a miss so an analysis never fails because its
    durable tier does.
    """


@dataclass(frozen=True)
class StoreEntry:
    """One persisted artifact, as reported by :meth:`ArtifactStore.entries`."""

    key: StoreKey
    size_bytes: int
    created: float        # unix timestamp of publication
    last_used: float      # unix timestamp of the most recent read hit

    @property
    def signature(self) -> str:
        return self.key[0]

    @property
    def pass_name(self) -> str:
        return self.key[2]


@dataclass
class PruneResult:
    """What a :meth:`ArtifactStore.prune` / ``gc`` call removed and kept."""

    removed_entries: int = 0
    removed_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0
    #: Non-artifact debris removed (stale temp files, orphan locks,
    #: quarantined corpses) — populated by ``gc``.
    removed_debris: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)

    def note(self, reason: str, count: int = 1) -> None:
        self.reasons[reason] = self.reasons.get(reason, 0) + count


@runtime_checkable
class ArtifactStore(Protocol):
    """Structural protocol every durable artifact backend satisfies."""

    #: Short backend name ("local", later "remote", ...).
    name: str

    def get(self, key: StoreKey) -> Optional[Any]:
        """Return the stored value, or ``None`` on miss/corruption."""
        ...

    def put(self, key: StoreKey, value: Any) -> bool:
        """Persist a value; ``False`` when it cannot be serialized."""
        ...

    @contextmanager
    def lock(self, key: StoreKey) -> Iterator[None]:
        """Hold the cross-process single-flight lock for a key."""
        ...

    def entries(self) -> List[StoreEntry]:
        """Enumerate every stored artifact (deterministic order)."""
        ...

    def prune(self, *, max_bytes: Optional[int] = None,
              max_age_seconds: Optional[float] = None) -> PruneResult:
        """Apply a size/age retention policy; returns what was removed."""
        ...

    @property
    def stats(self) -> Dict[str, int]:
        """Process-local operation counters (hits, misses, writes, ...)."""
        ...


#: Backend name -> factory taking the location string.  ``resolve_store``
#: looks up the part before the first ``:`` of a spec here, so a remote
#: backend registers as e.g. ``STORE_BACKENDS["http"] = HttpStore`` and
#: ``--store http://cache.example`` just works.
STORE_BACKENDS: Registry = Registry("store backend")


def register_store_backend(name: str,
                           factory: Callable[[str], ArtifactStore]) -> None:
    """Register a store backend under a spec prefix."""
    STORE_BACKENDS[name] = factory


def resolve_store(spec) -> Optional[ArtifactStore]:
    """Coerce a store spec to a backend (``None`` stays ``None``).

    Accepted spellings: an :class:`ArtifactStore` instance, a filesystem
    path (the default ``local`` backend), or ``"backend:location"`` for a
    registered backend.
    """
    if spec is None:
        return None
    if isinstance(spec, ArtifactStore):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"store must be an ArtifactStore, a path or a 'backend:path' "
            f"spec, got {type(spec).__name__}")
    prefix, sep, rest = spec.partition(":")
    if sep and prefix in STORE_BACKENDS:
        return STORE_BACKENDS[prefix](rest)
    # No recognised prefix: the whole spec is a local directory path
    # (which keeps Windows drive letters and bare relative paths working).
    return STORE_BACKENDS["local"](spec)
