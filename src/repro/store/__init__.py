"""Persistent content-addressed artifact storage.

The in-memory :class:`~repro.pipeline.cache.ArtifactCache` dies with the
process; this package is the durable tier underneath it.  A
:class:`LocalDirStore` persists pass results on disk under the same
``(netlist signature, config key, pass name)`` tuple, with atomic
write-then-rename publication, integrity hashing on read, schema/version
stamping, cross-process single-flight locking and a size/age retention
policy — so a repeated design hits warm artifacts across processes and
machines::

    from repro.api import Session

    session = Session(store="~/.cache/repro-artifacts")
    session.analyze("date13")      # cold: computes and persists
    # ... any later process ...
    session = Session(store="~/.cache/repro-artifacts")
    session.analyze("date13")      # warm: every pass replays from disk

The :class:`ArtifactStore` protocol keeps the backend pluggable
(:data:`STORE_BACKENDS` / :func:`register_store_backend`); ``repro cache
ls|gc|prune`` is the command-line face.
"""

from repro.store.base import (STORE_BACKENDS, ArtifactStore, PruneResult,
                              StoreEntry, StoreError, StoreKey,
                              register_store_backend, resolve_store)
from repro.store.local import STORE_SCHEMA, LocalDirStore, store_key_digest

__all__ = [
    "ArtifactStore",
    "LocalDirStore",
    "PruneResult",
    "StoreEntry",
    "StoreError",
    "StoreKey",
    "STORE_BACKENDS",
    "STORE_SCHEMA",
    "register_store_backend",
    "resolve_store",
    "store_key_digest",
]
