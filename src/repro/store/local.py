"""The default durable backend: a content-addressed directory store.

Layout (all under one root, one subtree per on-disk schema version so a
format change never misreads old artifacts)::

    <root>/v1/
        objects/<aa>/<digest>     one artifact per file
        locks/<digest>.lock       cross-process single-flight locks
        quarantine/<digest>.<n>   corrupt files, kept for post-mortem
        tmp/                      staging for atomic publication

Each artifact file is a single JSON header line followed by the pickled
payload.  The header stamps the schema version, the package version that
wrote the artifact, the full key tuple and the payload's SHA-256; reads
verify the hash and quarantine any file that fails (truncation, bit rot,
a torn concurrent writer on a non-POSIX filesystem), counting a
*corruption* and reporting a miss so the caller recomputes.

Publication is write-then-rename: the payload is staged under ``tmp/``
and ``os.replace``d into place, so readers never observe a half-written
artifact and concurrent writers of the same key are idempotent (last
rename wins; both wrote identical content).

:meth:`LocalDirStore.lock` is the cross-process single-flight primitive:
an ``fcntl.flock`` on the key's lock file where available, an
``O_CREAT|O_EXCL`` spin lock elsewhere.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro._version import __version__
from repro.store.base import (PruneResult, StoreEntry, StoreError, StoreKey,
                              register_store_backend)

try:  # POSIX — the fast, robust path
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: On-disk schema version (directory name component).  Bump on any layout
#: or header change: old trees become invisible rather than misread.
STORE_SCHEMA = 1

#: Stale-debris thresholds for :meth:`LocalDirStore.gc` (seconds).
_TMP_MAX_AGE = 3600.0
_LOCK_MAX_AGE = 86400.0


def store_key_digest(key: StoreKey) -> str:
    """Stable content address of a cache-key tuple."""
    hasher = hashlib.sha256()
    for part in key:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class LocalDirStore:
    """Content-addressed artifact store on a local (or shared) directory."""

    name = "local"

    def __init__(self, root, *,
                 max_bytes: Optional[int] = None,
                 max_age_seconds: Optional[float] = None) -> None:
        self.root = Path(root).expanduser()
        #: Default retention policy, applied by :meth:`gc` (and available
        #: to :meth:`prune` callers that pass nothing explicit).
        self.max_bytes = max_bytes
        self.max_age_seconds = max_age_seconds
        base = self.root / f"v{STORE_SCHEMA}"
        self._objects = base / "objects"
        self._locks = base / "locks"
        self._quarantine = base / "quarantine"
        self._tmp = base / "tmp"
        for directory in (self._objects, self._locks,
                          self._quarantine, self._tmp):
            directory.mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0, "write_errors": 0,
            "corruptions": 0, "stale": 0, "evictions": 0,
        }

    # ------------------------------------------------------------------ #
    # paths & helpers
    # ------------------------------------------------------------------ #
    def _object_path(self, key: StoreKey) -> Path:
        digest = store_key_digest(key)
        return self._objects / digest[:2] / digest

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[counter] += amount

    @property
    def stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return dict(self._counters)

    def __repr__(self) -> str:
        return f"LocalDirStore({str(self.root)!r})"

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def get(self, key: StoreKey) -> Optional[Any]:
        path = self._object_path(key)
        try:
            with path.open("rb") as handle:
                header_line = handle.readline()
                payload = handle.read()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError as exc:
            raise StoreError(f"cannot read artifact {path}: {exc}") from exc

        header = self._parse_header(header_line)
        if header is None:
            self._quarantine_file(path, "unparseable header")
            self._count("misses")
            return None
        if header.get("version") != __version__:
            # Written by a different package version: pickled internals may
            # have changed shape, so treat as stale and drop rather than
            # risk replaying a subtly incompatible artifact.
            self._count("stale")
            self._count("misses")
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
            self._quarantine_file(path, "payload hash mismatch")
            self._count("misses")
            return None
        try:
            value = pickle.loads(payload)
        except Exception:  # noqa: BLE001 — any unpickling failure is corruption
            self._quarantine_file(path, "unpicklable payload")
            self._count("misses")
            return None
        self._count("hits")
        # Touch for LRU recency: prune evicts least-recently-*used* first.
        with contextlib.suppress(OSError):
            os.utime(path)
        return value

    @staticmethod
    def _parse_header(line: bytes) -> Optional[Dict[str, Any]]:
        try:
            header = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        return header if isinstance(header, dict) else None

    def _quarantine_file(self, path: Path, reason: str) -> None:
        self._count("corruptions")
        target = self._quarantine / f"{path.name}.{os.getpid()}-{time.time_ns()}"
        try:
            os.replace(path, target)
        except OSError:
            with contextlib.suppress(OSError):
                path.unlink()

    # ------------------------------------------------------------------ #
    # write path
    # ------------------------------------------------------------------ #
    def put(self, key: StoreKey, value: Any) -> bool:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — unpicklable artifacts just skip
            self._count("write_errors")
            return False
        header = json.dumps({
            "schema": STORE_SCHEMA,
            "version": __version__,
            "key": list(key),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "created": time.time(),
        }, sort_keys=True).encode("utf-8") + b"\n"

        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = self._tmp / f"{path.name}.{os.getpid()}-{threading.get_ident()}"
        try:
            with staging.open("wb") as handle:
                handle.write(header)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(staging, path)
        except OSError as exc:
            with contextlib.suppress(OSError):
                staging.unlink()
            raise StoreError(f"cannot publish artifact {path}: {exc}") from exc
        self._count("writes")
        return True

    # ------------------------------------------------------------------ #
    # cross-process single-flight
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def lock(self, key: StoreKey) -> Iterator[None]:
        """Hold the exclusive cross-process lock for a key (blocking).

        With ``fcntl`` the lock is crash-safe (the kernel releases it when
        the holder dies); the portable fallback spins on an
        ``O_CREAT|O_EXCL`` sentinel and steals locks older than
        :data:`_LOCK_MAX_AGE`.
        """
        lock_path = self._locks / f"{store_key_digest(key)}.lock"
        if fcntl is not None:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                with contextlib.suppress(OSError):
                    fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)
            return
        # pragma: no cover — exercised only on platforms without fcntl
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
                with contextlib.suppress(OSError):
                    if (time.time() - lock_path.stat().st_mtime
                            > _LOCK_MAX_AGE):
                        lock_path.unlink()
                        continue
                time.sleep(0.05)
        try:
            yield
        finally:
            os.close(fd)
            with contextlib.suppress(OSError):
                lock_path.unlink()

    # ------------------------------------------------------------------ #
    # enumeration & retention
    # ------------------------------------------------------------------ #
    def _iter_files(self) -> Iterator[Tuple[Path, os.stat_result]]:
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                try:
                    yield path, path.stat()
                except OSError:
                    continue

    def entries(self) -> List[StoreEntry]:
        result: List[StoreEntry] = []
        for path, stat in self._iter_files():
            try:
                with path.open("rb") as handle:
                    header = self._parse_header(handle.readline())
            except OSError:
                continue
            if header is None or "key" not in header:
                continue
            key = tuple(header["key"])
            if len(key) != 3:
                continue
            result.append(StoreEntry(
                key=key,  # type: ignore[arg-type]
                size_bytes=stat.st_size,
                created=float(header.get("created", stat.st_mtime)),
                last_used=stat.st_mtime,
            ))
        return result

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_files())

    def prune(self, *, max_bytes: Optional[int] = None,
              max_age_seconds: Optional[float] = None) -> PruneResult:
        """Drop artifacts past the age bound, then oldest-used over the
        size bound.  Explicit arguments win over the store's defaults."""
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_age = (max_age_seconds if max_age_seconds is not None
                   else self.max_age_seconds)
        result = PruneResult()
        now = time.time()
        survivors: List[Tuple[float, Path, int]] = []
        for path, stat in self._iter_files():
            if max_age is not None and now - stat.st_mtime > max_age:
                self._remove(path, stat.st_size, result, "expired")
            else:
                survivors.append((stat.st_mtime, path, stat.st_size))

        if max_bytes is not None:
            survivors.sort()  # least recently used first
            total = sum(size for _, _, size in survivors)
            while survivors and total > max_bytes:
                _, path, size = survivors.pop(0)
                self._remove(path, size, result, "over size budget")
                total -= size

        result.kept_entries = len(survivors)
        result.kept_bytes = sum(size for _, _, size in survivors)
        return result

    def _remove(self, path: Path, size: int, result: PruneResult,
                reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            return
        result.removed_entries += 1
        result.removed_bytes += size
        result.note(reason)
        self._count("evictions")

    def gc(self) -> PruneResult:
        """Collect debris and apply the store's default retention policy.

        Removes stale staging files (a writer died mid-publish), aged-out
        lock files and everything in quarantine, then runs :meth:`prune`
        with the store's configured ``max_bytes`` / ``max_age_seconds``.
        """
        result = self.prune()
        now = time.time()
        for directory, age in ((self._tmp, _TMP_MAX_AGE),
                               (self._locks, _LOCK_MAX_AGE),
                               (self._quarantine, 0.0)):
            for path in sorted(directory.iterdir()):
                try:
                    if now - path.stat().st_mtime >= age:
                        path.unlink()
                        result.removed_debris += 1
                except OSError:
                    continue
        return result

    def clear(self) -> None:
        """Drop every artifact (testing / ``prune --all`` convenience)."""
        for path, _ in self._iter_files():
            with contextlib.suppress(OSError):
                path.unlink()


register_store_backend("local", LocalDirStore)
