"""The wire protocol of the analysis service: line-delimited JSON.

One request or response per ``\\n``-terminated UTF-8 line, each a JSON
object.  Requests carry an ``op`` field; responses carry ``ok`` plus
op-specific payload, or ``ok: false`` with an ``error`` code (and, for
backpressure rejections, a ``retry_after`` hint in seconds).  Streaming
responses (the ``stream`` op) are a sequence of event lines —
``{"event": "scenario", ...}`` per completed sweep scenario, closed by
``{"event": "done", ...}`` — on a connection dedicated to that stream.

Everything here is stdlib-only and transport-agnostic: the asyncio
server and the blocking client share these helpers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Bumped on any incompatible message change; ``ping`` reports it so
#: clients can refuse to talk across versions.
PROTOCOL_VERSION = 1

#: Upper bound on one message line (a sweep spec, never a result payload
#: this size) — a malformed peer cannot make the server buffer without
#: bound.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: The operations the server understands.
OPS = ("ping", "submit", "status", "jobs", "result", "stream", "cancel",
       "stats", "shutdown")

#: Machine-readable error codes.
ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_OP = "unknown_op"
ERR_UNKNOWN_JOB = "unknown_job"
ERR_QUEUE_FULL = "queue_full"
ERR_QUOTA_EXCEEDED = "quota_exceeded"
ERR_NOT_DONE = "not_done"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_INTERNAL = "internal"


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=False).encode("utf-8") + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises ``ValueError`` on malformed input."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def ok(**payload: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True}
    response.update(payload)
    return response


def error(code: str, detail: str = "",
          retry_after: Optional[float] = None) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": False, "error": code}
    if detail:
        response["detail"] = detail
    if retry_after is not None:
        response["retry_after"] = round(retry_after, 3)
    return response
