"""Asynchronous analysis service over :class:`repro.api.Session`.

A stdlib-only job server: submit analyses and scenario sweeps over a
line-delimited-JSON TCP protocol, stream per-scenario results as they
complete, with bounded queues (backpressure with ``retry_after`` hints),
per-client quotas and graceful drain on shutdown.  Pairs naturally with
the durable artifact store (:mod:`repro.store`): give the service a
store and every job it runs warms — and is warmed by — artifacts from
any other process sharing that store.

Server side: :class:`AnalysisService` (``repro serve``).  Client side:
:class:`ServiceClient` (``repro submit`` / ``repro jobs``).
"""

from repro.service.client import (ServiceClient, ServiceError,
                                  ServiceUnavailable)
from repro.service.jobs import (Job, JobCancelled, JobManager, JobState,
                                SubmitRejected)
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import AnalysisService

__all__ = [
    "AnalysisService",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobState",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "SubmitRejected",
]
