"""The asyncio TCP front-end — ``repro serve``.

:class:`AnalysisService` binds a line-delimited-JSON listener (see
:mod:`repro.service.protocol`) over one :class:`JobManager`, which in
turn wraps one shared :class:`~repro.api.Session` — so every job the
service runs shares the warm in-memory cache and, when configured, the
durable artifact store.

Connections are cheap request/response exchanges; the one long-lived op
is ``stream``, which dedicates its connection to a job's event feed
(history replay + live scenario completions) until the terminal ``done``
event, after which the connection is again free for requests.

Shutdown is graceful by default: the ``shutdown`` op (or SIGINT/SIGTERM
when running under :meth:`run`) stops admissions, lets queued and
running jobs drain, flushes the artifact store and only then exits.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from typing import Any, Callable, Dict, Optional

from repro.service import protocol
from repro.service.jobs import JobManager, SubmitRejected


class AnalysisService:
    """One listener + one job manager + one shared analysis session."""

    def __init__(self, *,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 session=None,
                 store=None,
                 max_queue: int = 8,
                 max_jobs_per_client: int = 2,
                 workers: int = 1,
                 runner=None) -> None:
        if session is None and runner is None:
            from repro.api import RunOptions, Session
            session = Session(options=RunOptions(store=store))
        self.host = host
        self.port = port  # rebound to the kernel-chosen port after start()
        self.manager = JobManager(session, max_queue=max_queue,
                                  max_jobs_per_client=max_jobs_per_client,
                                  workers=workers, runner=runner)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._drain = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self, drain: bool = True) -> None:
        """Flip the service into shutdown; safe from signal handlers."""
        self._drain = drain
        self.manager.begin_drain()
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        await self.manager.shutdown(drain=self._drain)

    async def main(self, ready: Optional[Callable[["AnalysisService"],
                                                  None]] = None) -> None:
        """start → announce → serve → drain, as one awaitable."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    signum, self.request_shutdown, True)
        if ready is not None:
            ready(self)
        await self.serve_until_shutdown()

    def run(self, ready: Optional[Callable[["AnalysisService"],
                                           None]] = None) -> None:
        """Blocking convenience wrapper: ``asyncio.run(self.main(...))``."""
        asyncio.run(self.main(ready))

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, protocol.error(
                        protocol.ERR_BAD_REQUEST, "request line too long"))
                    break
                if not line:
                    break
                try:
                    request = protocol.decode(line)
                except ValueError as exc:
                    await self._send(writer, protocol.error(
                        protocol.ERR_BAD_REQUEST, f"malformed request: {exc}"))
                    continue
                if not await self._dispatch(request, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request; returns False to end the connection."""
        op = request.get("op")
        if op == "stream":
            return await self._op_stream(request, writer)
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None:
            await self._send(writer, protocol.error(
                protocol.ERR_UNKNOWN_OP, f"unknown op {op!r}"))
            return True
        try:
            response = handler(request)
        except SubmitRejected as exc:
            response = protocol.error(exc.code, exc.detail,
                                      retry_after=exc.retry_after)
        except KeyError as exc:
            response = protocol.error(protocol.ERR_UNKNOWN_JOB, str(exc))
        except Exception as exc:  # noqa: BLE001 — never kill the connection
            response = protocol.error(protocol.ERR_INTERNAL,
                                      f"{type(exc).__name__}: {exc}")
        await self._send(writer, response)
        return op != "shutdown"

    @staticmethod
    async def _send(writer: asyncio.StreamWriter,
                    message: Dict[str, Any]) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.ok(version=protocol.PROTOCOL_VERSION,
                           service="repro-analysis-service")

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.manager.submit(request.get("kind", ""),
                                  request.get("spec") or {},
                                  client=str(request.get("client",
                                                         "anonymous")))
        return protocol.ok(job=job.describe())

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.manager.get(str(request.get("job_id")))
        return protocol.ok(job=job.describe())

    def _op_jobs(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.ok(jobs=[job.describe()
                                 for job in self.manager.jobs()])

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.manager.get(str(request.get("job_id")))
        if not job.state.terminal:
            return protocol.error(
                protocol.ERR_NOT_DONE,
                f"job {job.id} is {job.state.value}",
                retry_after=self.manager.retry_after())
        return protocol.ok(job=job.describe(), result=job.result)

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.manager.cancel(str(request.get("job_id")))
        return protocol.ok(job=job.describe())

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.ok(stats=self.manager.stats())

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        drain = bool(request.get("drain", True))
        self.request_shutdown(drain)
        return protocol.ok(state="draining" if drain else "aborting")

    async def _op_stream(self, request: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> bool:
        try:
            job = self.manager.get(str(request.get("job_id")))
        except KeyError as exc:
            await self._send(writer, protocol.error(
                protocol.ERR_UNKNOWN_JOB, str(exc)))
            return True
        await self._send(writer, protocol.ok(job=job.describe(),
                                             streaming=True))
        queue = self.manager.subscribe(job)
        while True:
            event = await queue.get()
            await self._send(writer, event)
            if event.get("event") == "done":
                return True
