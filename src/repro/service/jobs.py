"""Job lifecycle of the analysis service.

A :class:`JobManager` owns a bounded queue of analysis/sweep jobs and a
small pool of worker tasks that execute them against one shared
:class:`~repro.api.Session` (so every job enjoys the session's warm
artifact cache — and its durable store, when attached).  Analyses run in
a thread (via ``loop.run_in_executor``) so the asyncio side stays
responsive while PODEM grinds.

Lifecycle: ``queued → running → done | failed | cancelled``.  Admission
is governed by two limits, both surfaced to clients as structured
rejections with a ``retry_after`` hint rather than unbounded buffering:

* a global pending-queue bound (*backpressure* — the service never
  accepts more work than it is willing to remember), and
* a per-client cap on live (queued+running) jobs (*quota* — one chatty
  client cannot starve the rest).

Sweep jobs publish one event per completed scenario to any number of
subscribers; events are also kept on the job so a late subscriber
replays the full history.  Shutdown can *drain* (finish everything
admitted, reject new work) or abort (cancel queued jobs, interrupt
sweeps at the next scenario boundary).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro.service import protocol


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: The job kinds the default runner understands.
JOB_KINDS = ("analyze", "sweep")

#: Terminal jobs kept for ``result``/``status`` queries before the oldest
#: are forgotten.
DEFAULT_KEEP_RESULTS = 256


class SubmitRejected(Exception):
    """Admission refused — carries the protocol error code and a retry hint."""

    def __init__(self, code: str, detail: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


class JobCancelled(Exception):
    """Raised inside a runner to land the job in ``cancelled`` (not
    ``failed``)."""


@dataclass
class Job:
    """One unit of service work and everything observed about it."""

    id: str
    client: str
    kind: str
    spec: Dict[str, Any]
    state: JobState = JobState.QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    #: Terminal payload (``done`` only): the report/sweep JSON dict plus a
    #: rendered table.
    result: Optional[Dict[str, Any]] = None
    #: Event history (scenario completions, state changes, the closing
    #: ``done``) — replayed to late stream subscribers.
    events: List[Dict[str, Any]] = field(default_factory=list)
    subscribers: List["asyncio.Queue"] = field(default_factory=list)
    #: Set by ``cancel``; runners poll it at scenario boundaries.
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def describe(self) -> Dict[str, Any]:
        """The status payload (summary only — no result body)."""
        return {
            "id": self.id,
            "client": self.client,
            "kind": self.kind,
            "state": self.state.value,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "events": len(self.events),
        }


class JobManager:
    """Bounded job queue + worker pool over one shared session.

    All public methods are event-loop-side (not thread-safe); the runner
    executes in a worker thread and talks back only through the
    thread-safe ``emit`` callable it is handed.  ``runner`` is injectable
    for tests: signature ``runner(job, emit) -> result dict``, raising
    :class:`JobCancelled` to land in ``cancelled``.
    """

    def __init__(self, session=None, *,
                 max_queue: int = 8,
                 max_jobs_per_client: int = 2,
                 workers: int = 1,
                 runner: Optional[Callable[[Job, Callable], Dict]] = None,
                 keep_results: int = DEFAULT_KEEP_RESULTS) -> None:
        if session is None and runner is None:
            from repro.api import Session
            session = Session()
        self.session = session
        self.max_queue = max_queue
        self.max_jobs_per_client = max_jobs_per_client
        self.workers = max(1, workers)
        self.keep_results = keep_results
        self._runner = runner or self._default_runner
        self._jobs: "Dict[str, Job]" = {}
        self._order: List[str] = []
        self._ids = itertools.count(1)
        self._pending: "Optional[asyncio.Queue]" = None
        self._worker_tasks: List["asyncio.Task"] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        #: Sliding window of recent job durations feeding ``retry_after``.
        self._durations: List[float] = []
        self.started_jobs = 0
        self.finished_jobs = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pending = asyncio.Queue(maxsize=self.max_queue)
        self._worker_tasks = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.workers)]

    def begin_drain(self) -> None:
        """Stop admitting; already-queued and running jobs keep going."""
        self._draining = True

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the pool: drain (finish admitted work) or abort it."""
        self._draining = True
        if not drain:
            for job in list(self._jobs.values()):
                if not job.state.terminal:
                    self.cancel(job.id)
        while any(not job.state.terminal for job in self._jobs.values()):
            await asyncio.sleep(0.02)
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        if self.session is not None:
            # Land every write-behind store publication before the process
            # that asked us to shut down inspects the store.
            await self._loop.run_in_executor(None, self.session.cache.flush)
            # Release the parallel runtime: the session's persistent sweep
            # executor and every warm sharded-engine worker pool.  Jobs
            # re-warm lazily if the service is ever restarted in-process.
            closer = getattr(self.session, "close", None)
            if callable(closer):
                await self._loop.run_in_executor(
                    None, lambda: closer(shutdown_pools=True))

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(self, kind: str, spec: Dict[str, Any],
               client: str = "anonymous") -> Job:
        if self._draining:
            raise SubmitRejected(protocol.ERR_SHUTTING_DOWN,
                                 "service is shutting down")
        if kind not in JOB_KINDS:
            raise SubmitRejected(
                protocol.ERR_BAD_REQUEST,
                f"unknown job kind {kind!r} (expected one of {JOB_KINDS})")
        if not isinstance(spec, dict):
            raise SubmitRejected(protocol.ERR_BAD_REQUEST,
                                 "job spec must be a JSON object")
        live = sum(1 for job in self._jobs.values()
                   if job.client == client and not job.state.terminal)
        if live >= self.max_jobs_per_client:
            raise SubmitRejected(
                protocol.ERR_QUOTA_EXCEEDED,
                f"client {client!r} already has {live} live jobs "
                f"(limit {self.max_jobs_per_client})",
                retry_after=self.retry_after())
        job = Job(id=f"job-{next(self._ids):04d}", client=client,
                  kind=kind, spec=spec)
        try:
            self._pending.put_nowait(job.id)
        except asyncio.QueueFull:
            raise SubmitRejected(
                protocol.ERR_QUEUE_FULL,
                f"job queue is full ({self.max_queue} pending)",
                retry_after=self.retry_after()) from None
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._trim()
        return job

    def retry_after(self) -> float:
        """How long a rejected client should back off before retrying.

        Estimated as (queue depth + 1) runs of the recent average job
        duration shared across the worker pool — crude, but monotone in
        actual load and never zero.
        """
        average = (sum(self._durations) / len(self._durations)
                   if self._durations else 1.0)
        depth = self._pending.qsize() if self._pending is not None else 0
        return max(0.1, average * (depth + 1) / self.workers)

    # ------------------------------------------------------------------ #
    # queries & control
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        return [self._jobs[job_id] for job_id in self._order
                if job_id in self._jobs]

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued → immediate; running → at the runner's next
        cancellation point (scenario boundary); terminal → no-op."""
        job = self.get(job_id)
        if job.state.terminal:
            return job
        job.cancel_event.set()
        if job.state is JobState.QUEUED:
            # The id stays in the asyncio queue; the worker skips it on
            # dequeue because the state is already terminal.
            self._finish(job, JobState.CANCELLED)
        return job

    def subscribe(self, job: Job) -> "asyncio.Queue":
        """An event queue pre-loaded with the job's history; live events
        follow until the terminal ``done`` event (always delivered)."""
        queue: "asyncio.Queue" = asyncio.Queue()
        for event in job.events:
            queue.put_nowait(event)
        if not job.state.terminal:
            job.subscribers.append(queue)
        return queue

    def stats(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            by_state[job.state.value] += 1
        payload: Dict[str, Any] = {
            "jobs": by_state,
            "queued": self._pending.qsize() if self._pending else 0,
            "queue_capacity": self.max_queue,
            "workers": self.workers,
            "draining": self._draining,
            "started_jobs": self.started_jobs,
            "finished_jobs": self.finished_jobs,
        }
        if self.session is not None:
            payload["cache"] = dict(self.session.cache_stats)
        from repro.runtime import pool_stats
        pools = pool_stats()
        if pools:
            payload["pools"] = pools
        return payload

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    async def _worker(self) -> None:
        while True:
            job_id = await self._pending.get()
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue  # cancelled (or forgotten) while queued
            job.state = JobState.RUNNING
            job.started = time.time()
            self.started_jobs += 1
            self._publish(job, {"event": "state", "job_id": job.id,
                                "state": JobState.RUNNING.value})
            emit = self._thread_safe_emitter(job)
            try:
                result = await self._loop.run_in_executor(
                    None, self._runner, job, emit)
            except JobCancelled:
                self._finish(job, JobState.CANCELLED)
            except Exception as exc:  # noqa: BLE001 — jobs fail, service lives
                self._finish(job, JobState.FAILED,
                             error=f"{type(exc).__name__}: {exc}")
            else:
                if job.cancel_event.is_set():
                    self._finish(job, JobState.CANCELLED)
                else:
                    self._finish(job, JobState.DONE, result=result)

    def _thread_safe_emitter(self, job: Job) -> Callable[[Dict], None]:
        loop = self._loop

        def emit(event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._publish, job, event)
        return emit

    def _publish(self, job: Job, event: Dict[str, Any]) -> None:
        job.events.append(event)
        for queue in job.subscribers:
            queue.put_nowait(event)

    def _finish(self, job: Job, state: JobState,
                result: Optional[Dict] = None,
                error: Optional[str] = None) -> None:
        job.state = state
        job.finished = time.time()
        job.result = result
        job.error = error
        self.finished_jobs += 1
        if job.started is not None:
            self._durations.append(job.finished - job.started)
            del self._durations[:-16]
        self._publish(job, {"event": "done", "job_id": job.id,
                            "state": state.value, "error": error})
        job.subscribers.clear()

    def _trim(self) -> None:
        """Forget the oldest terminal jobs beyond ``keep_results``."""
        excess = len(self._order) - self.keep_results
        if excess <= 0:
            return
        kept: List[str] = []
        for job_id in self._order:
            job = self._jobs.get(job_id)
            if excess > 0 and job is not None and job.state.terminal:
                del self._jobs[job_id]
                excess -= 1
            else:
                kept.append(job_id)
        self._order = kept

    # ------------------------------------------------------------------ #
    # the default runner — real analyses against the shared session
    # ------------------------------------------------------------------ #
    def _default_runner(self, job: Job,
                        emit: Callable[[Dict], None]) -> Dict[str, Any]:
        """Runs in a worker thread; must only touch the loop via ``emit``."""
        if job.kind == "analyze":
            return self._run_analyze(job)
        return self._run_sweep(job, emit)

    def _run_analyze(self, job: Job) -> Dict[str, Any]:
        from repro.api import RunOptions

        spec = job.spec
        report = self.session.analyze(
            spec.get("design", "date13"),
            options=RunOptions(
                effort=spec.get("effort"),
                fault_model=spec.get("fault_model"),
                static_prune=spec.get("static_prune"),
                jobs=spec.get("jobs"),
                atpg_backend=spec.get("atpg_backend"),
                atpg_seed=spec.get("atpg_seed")))
        return {"table": report.to_table(), "report": report.to_json_dict()}

    def _run_sweep(self, job: Job,
                   emit: Callable[[Dict], None]) -> Dict[str, Any]:
        from repro.api import ScenarioGrid

        spec = job.spec
        grid = ScenarioGrid(spec.get("base", "date13"),
                            axes=spec.get("axes") or {},
                            name=spec.get("name"))

        def on_result(result) -> None:
            emit({
                "event": "scenario",
                "job_id": job.id,
                "index": result.index,
                "label": result.label,
                "ok": result.ok,
                "error": result.error,
                "elapsed_seconds": result.elapsed_seconds,
                "table": (result.report.to_table()
                          if result.report is not None else None),
                "result": result.to_json_dict(),
            })
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)

        sweep = self.session.sweep(grid, effort=spec.get("effort"),
                                   on_result=on_result)
        return {"table": sweep.to_table(), "report": sweep.to_json_dict()}
