"""Blocking client of the analysis service — ``repro submit`` & friends.

Each request opens a fresh TCP connection, writes one protocol line and
reads one response; :meth:`ServiceClient.stream` instead dedicates its
connection to a job's event feed.  Stdlib sockets only, so scripts and
CI can talk to a ``repro serve`` instance without any dependency.
"""

from __future__ import annotations

import contextlib
import socket
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.service import protocol


class ServiceError(RuntimeError):
    """A structured server-side rejection or failure."""

    def __init__(self, code: str, detail: str = "",
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """The service endpoint refused the connection / is unreachable."""

    def __init__(self, detail: str) -> None:
        super().__init__("unavailable", detail)


class ServiceClient:
    """Thin blocking wrapper over the line-delimited-JSON protocol."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 300.0,
                 client_id: str = "cli") -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def _connection(self):
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot reach {self.host}:{self.port} ({exc})") from exc
        try:
            yield sock
        finally:
            with contextlib.suppress(OSError):
                sock.close()

    @staticmethod
    def _read_line(stream) -> Dict[str, Any]:
        line = stream.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ServiceUnavailable("connection closed by server")
        if len(line) > protocol.MAX_LINE_BYTES:
            raise ServiceError(protocol.ERR_BAD_REQUEST,
                               "oversized response line")
        return protocol.decode(line)

    @staticmethod
    def _check(response: Dict[str, Any]) -> Dict[str, Any]:
        if not response.get("ok", False):
            raise ServiceError(response.get("error", protocol.ERR_INTERNAL),
                               response.get("detail", ""),
                               retry_after=response.get("retry_after"))
        return response

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response exchange; raises :class:`ServiceError` on
        ``ok: false``."""
        payload = {"op": op}
        payload.update(fields)
        with self._connection() as sock:
            sock.sendall(protocol.encode(payload))
            with sock.makefile("rb") as stream:
                return self._check(self._read_line(stream))

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(self, kind: str, spec: Dict[str, Any],
               client: Optional[str] = None) -> Dict[str, Any]:
        """Submit a job; returns its status payload (``id``, ``state``...)."""
        response = self.request("submit", kind=kind, spec=spec,
                                client=client or self.client_id)
        return response["job"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", job_id=job_id)["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """Terminal job's full response ({"job": ..., "result": ...})."""
        return self.request("result", job_id=job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job_id=job_id)["job"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request("shutdown", drain=drain)

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's events (history + live) through ``done``."""
        with self._connection() as sock:
            sock.sendall(protocol.encode({"op": "stream", "job_id": job_id}))
            with sock.makefile("rb") as stream:
                self._check(self._read_line(stream))  # stream acknowledged
                while True:
                    event = self._read_line(stream)
                    yield event
                    if event.get("event") == "done":
                        return

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll)

    def submit_with_retry(self, kind: str, spec: Dict[str, Any], *,
                          attempts: int = 5,
                          client: Optional[str] = None) -> Dict[str, Any]:
        """Submit, honouring backpressure: sleeps out ``retry_after`` on
        queue-full/quota rejections before retrying."""
        last: Optional[ServiceError] = None
        for _ in range(attempts):
            try:
                return self.submit(kind, spec, client=client)
            except ServiceError as exc:
                if exc.code not in (protocol.ERR_QUEUE_FULL,
                                    protocol.ERR_QUOTA_EXCEEDED):
                    raise
                last = exc
                time.sleep(min(exc.retry_after or 0.2, 5.0))
        raise last
