"""Lightweight wall-clock timing helpers for flow reports and benchmarks."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Stopwatch:
    """Accumulates named wall-clock intervals.

    Used by :class:`repro.core.flow.OnlineUntestableFlow` to report the
    per-phase analysis time (the paper highlights that the manipulated
    circuit is analysed in under a second).
    """

    def __init__(self) -> None:
        self._laps: Dict[str, float] = {}
        self._current: Optional[str] = None
        self._started_at = 0.0

    def start(self, name: str) -> None:
        """Start timing the phase ``name``; stops any phase in progress."""
        if self._current is not None:
            self.stop()
        self._current = name
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the current phase and return its elapsed seconds."""
        if self._current is None:
            raise RuntimeError("Stopwatch.stop() called with no phase running")
        elapsed = time.perf_counter() - self._started_at
        self._laps[self._current] = self._laps.get(self._current, 0.0) + elapsed
        self._current = None
        return elapsed

    def elapsed(self, name: str) -> float:
        """Total accumulated seconds for phase ``name`` (0.0 if never run)."""
        return self._laps.get(name, 0.0)

    @property
    def laps(self) -> Dict[str, float]:
        return dict(self._laps)

    def total(self) -> float:
        return sum(self._laps.values())

    def __enter__(self) -> "Stopwatch":
        self.start("total")
        return self

    def __exit__(self, *exc: object) -> None:
        if self._current is not None:
            self.stop()
