"""Bit-vector helpers used throughout the netlist generators and the ISA model.

All helpers operate on plain Python integers interpreted as unsigned
bit-vectors of an explicit width.  Keeping these as free functions (rather
than a BitVector class) keeps hot loops in the simulators cheap.
"""

from __future__ import annotations

from typing import Iterable, List


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (LSB = 0) of ``value`` as 0 or 1."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def to_bits(value: int, width: int) -> List[int]:
    """Expand ``value`` into a list of ``width`` bits, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: Iterable[int]) -> int:
    """Pack an LSB-first iterable of 0/1 into an integer."""
    result = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit value must be 0 or 1, got {b!r}")
        result |= b << i
    return result


def bits_of(value: int, width: int) -> str:
    """Render ``value`` as a binary string of exactly ``width`` characters."""
    return format(value & mask(width), f"0{width}b")


def count_ones(value: int) -> int:
    """Population count of a non-negative integer."""
    if value < 0:
        raise ValueError("count_ones expects a non-negative integer")
    return bin(value).count("1")


def sign_extend(value: int, width: int, target_width: int = 32) -> int:
    """Sign-extend ``value`` of ``width`` bits to ``target_width`` bits."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        value |= mask(target_width) & ~mask(width)
    return value & mask(target_width)


def rotate_left(value: int, amount: int, width: int = 32) -> int:
    """Rotate ``value`` left by ``amount`` within ``width`` bits."""
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotate_right(value: int, amount: int, width: int = 32) -> int:
    """Rotate ``value`` right by ``amount`` within ``width`` bits."""
    amount %= width
    value &= mask(width)
    return ((value >> amount) | (value << (width - amount))) & mask(width)
