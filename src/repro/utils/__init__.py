"""Small shared utilities: bit-vector helpers, table rendering, timers."""

from repro.utils.bitvec import (
    bit,
    bits_of,
    count_ones,
    from_bits,
    mask,
    to_bits,
)
from repro.utils.tables import Table
from repro.utils.timing import Stopwatch

__all__ = [
    "bit",
    "bits_of",
    "count_ones",
    "from_bits",
    "mask",
    "to_bits",
    "Table",
    "Stopwatch",
]
