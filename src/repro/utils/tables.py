"""Plain-text table rendering used by reports and benchmark output.

The reports in :mod:`repro.core.report` reproduce the layout of Table I in the
paper; this module provides the generic fixed-width rendering they build on.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """A simple fixed-width text table.

    >>> t = Table(["Source", "#", "%"])
    >>> t.add_row(["Scan", 19142, "8.9%"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [self._format(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        widths = self._widths()
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(
            "|"
            + "|".join(f" {h.ljust(w)} " for h, w in zip(self.headers, widths))
            + "|"
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                "|"
                + "|".join(f" {c.rjust(w)} " for c, w in zip(row, widths))
                + "|"
            )
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
