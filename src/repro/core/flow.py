"""End-to-end on-line functionally untestable fault identification flow.

:class:`OnlineUntestableFlow` reproduces the three-activity flow of §4:

1. search for sources of untestability (scan chains, debug interface, memory
   map — taken from the netlist annotations / SoC description);
2. circuit manipulation (ties and floats on clones of the core);
3. screen out the on-line functionally untestable faults, by direct pruning
   (scan) or by structural-untestability checking (debug, memory).

Sources are applied in the paper's order (scan → debug → memory) and each
fault is attributed to the first source that identifies it, so the per-source
counts add up to the total exactly as in Table I.

Since the pass-pipeline refactor this class is a thin backward-compatible
facade: it translates its :class:`FlowConfig` into a pass selection and runs
a serial :class:`repro.pipeline.Pipeline`, returning the identical
:class:`OnlineUntestableReport`.  New code should prefer
:func:`repro.analyze` or :class:`repro.pipeline.Pipeline` directly — they
add pass composition, concurrent execution and artifact caching.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

# Re-exported for backward compatibility: these classes lived here before
# the pipeline refactor moved them to repro.core.results.
from repro.core.results import (FlowConfig, OnlineUntestableReport,
                                SourceSummary)
from repro.faults.fault import StuckAtFault
from repro.memory.memory_map import MemoryMap
from repro.netlist.module import Netlist

__all__ = ["FlowConfig", "SourceSummary", "OnlineUntestableReport",
           "OnlineUntestableFlow"]


class OnlineUntestableFlow:
    """Orchestrates the §3 analyses over a processor core."""

    def __init__(self, target: Union["SoC", Netlist],  # noqa: F821
                 config: Optional[FlowConfig] = None,
                 memory_map: Optional[MemoryMap] = None) -> None:
        from repro.soc.soc_builder import SoC

        if isinstance(target, SoC):
            self.netlist = target.cpu
            self.memory_map = memory_map or target.memory_map
        else:
            self.netlist = target
            self.memory_map = memory_map or target.annotations.get("memory_map")
        self.config = config or FlowConfig()

    def run(self, faults: Optional[Iterable[StuckAtFault]] = None) -> OnlineUntestableReport:
        """Run the configured analyses and return the report."""
        from repro.pipeline import ArtifactCache, Pipeline, default_pass_names

        # FlowConfig.store attaches the durable artifact tier even on this
        # legacy path, so repeated runs of one design replay warm pass
        # results across processes (see repro.store).
        cache = (ArtifactCache(store=self.config.store)
                 if getattr(self.config, "store", None) else None)
        pipeline = Pipeline(default_pass_names(self.config), cache=cache)
        result = pipeline.run(self.netlist, config=self.config,
                              memory_map=self.memory_map, faults=faults)
        return result.report
