"""End-to-end on-line functionally untestable fault identification flow.

:class:`OnlineUntestableFlow` reproduces the three-activity flow of §4:

1. search for sources of untestability (scan chains, debug interface, memory
   map — taken from the netlist annotations / SoC description);
2. circuit manipulation (ties and floats on clones of the core);
3. screen out the on-line functionally untestable faults, by direct pruning
   (scan) or by structural-untestability checking (debug, memory).

Sources are applied in the paper's order (scan → debug → memory) and each
fault is attributed to the first source that identifies it, so the per-source
counts add up to the total exactly as in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.atpg.engine import AtpgEffort
from repro.core.debug_control import (
    DebugControlResult,
    compute_baseline_untestable,
    identify_debug_control_untestable,
)
from repro.core.debug_observe import DebugObserveResult, identify_debug_observe_untestable
from repro.core.memory_analysis import MemoryMapResult, identify_memory_map_untestable
from repro.core.scan_analysis import ScanAnalysisResult, identify_scan_untestable
from repro.faults.categories import FaultClass, OnlineUntestableSource
from repro.faults.fault import StuckAtFault
from repro.faults.faultlist import FaultList, generate_fault_list
from repro.memory.memory_map import MemoryMap
from repro.netlist.module import Netlist
from repro.soc.soc_builder import SoC
from repro.utils.timing import Stopwatch


@dataclass
class FlowConfig:
    """What the flow runs and how hard the ATPG engine works."""

    effort: AtpgEffort = AtpgEffort.TIE
    run_scan: bool = True
    run_debug_control: bool = True
    run_debug_observe: bool = True
    run_memory_map: bool = True
    tie_flop_outputs: bool = True   # §3.3 / Fig. 6 ablation knob
    tie_flop_inputs: bool = True


@dataclass
class SourceSummary:
    """Per-source contribution to the on-line untestable population."""

    source: OnlineUntestableSource
    identified: Set[StuckAtFault] = field(default_factory=set)
    attributed: Set[StuckAtFault] = field(default_factory=set)
    runtime_seconds: float = 0.0

    @property
    def count(self) -> int:
        return len(self.attributed)


@dataclass
class OnlineUntestableReport:
    """The flow's result — everything needed to print Table I."""

    netlist_name: str
    total_faults: int
    baseline_untestable: Set[StuckAtFault] = field(default_factory=set)
    sources: List[SourceSummary] = field(default_factory=list)
    scan_result: Optional[ScanAnalysisResult] = None
    debug_control_result: Optional[DebugControlResult] = None
    debug_observe_result: Optional[DebugObserveResult] = None
    memory_result: Optional[MemoryMapResult] = None
    runtimes: Dict[str, float] = field(default_factory=dict)

    @property
    def online_untestable(self) -> Set[StuckAtFault]:
        result: Set[StuckAtFault] = set()
        for source in self.sources:
            result |= source.attributed
        return result

    @property
    def total_online_untestable(self) -> int:
        return len(self.online_untestable)

    def percentage(self, count: int) -> float:
        return 100.0 * count / self.total_faults if self.total_faults else 0.0

    def source_count(self, source: OnlineUntestableSource) -> int:
        for summary in self.sources:
            if summary.source is source:
                return summary.count
        return 0

    def table_rows(self) -> List[Dict[str, object]]:
        """Rows in the layout of the paper's Table I."""
        rows: List[Dict[str, object]] = [{
            "source": "Original",
            "count": len(self.baseline_untestable),
            "percent": self.percentage(len(self.baseline_untestable)),
        }]
        scan = self.source_count(OnlineUntestableSource.SCAN)
        debug_ctrl = self.source_count(OnlineUntestableSource.DEBUG_CONTROL)
        debug_obs = self.source_count(OnlineUntestableSource.DEBUG_OBSERVE)
        memory = self.source_count(OnlineUntestableSource.MEMORY_MAP)
        rows.append({"source": "Scan", "count": scan,
                     "percent": self.percentage(scan)})
        rows.append({"source": "Debug", "count": debug_ctrl + debug_obs,
                     "detail": f"{debug_ctrl}+{debug_obs}",
                     "percent": self.percentage(debug_ctrl + debug_obs)})
        rows.append({"source": "Memory", "count": memory,
                     "percent": self.percentage(memory)})
        total = self.total_online_untestable
        rows.append({"source": "TOTAL", "count": total,
                     "percent": self.percentage(total)})
        return rows

    def to_table(self) -> str:
        from repro.core.report import render_summary_table
        return render_summary_table(self)

    def apply_to_fault_list(self, fault_list: FaultList) -> FaultList:
        """Mark the identified faults in a fault list and return the pruned list."""
        for summary in self.sources:
            fault_list.classify_many(summary.attributed, FaultClass.UT, summary.source)
        return fault_list.prune(self.online_untestable)


class OnlineUntestableFlow:
    """Orchestrates the §3 analyses over a processor core."""

    def __init__(self, target: Union[SoC, Netlist],
                 config: Optional[FlowConfig] = None,
                 memory_map: Optional[MemoryMap] = None) -> None:
        if isinstance(target, SoC):
            self.netlist = target.cpu
            self.memory_map = memory_map or target.memory_map
        else:
            self.netlist = target
            self.memory_map = memory_map or target.annotations.get("memory_map")
        self.config = config or FlowConfig()

    def run(self, faults: Optional[Iterable[StuckAtFault]] = None) -> OnlineUntestableReport:
        """Run the configured analyses and return the report."""
        watch = Stopwatch()

        watch.start("fault_list")
        fault_universe = (list(faults) if faults is not None
                          else generate_fault_list(self.netlist).faults())
        fault_set = set(fault_universe)
        watch.stop()

        watch.start("baseline")
        baseline = compute_baseline_untestable(self.netlist, fault_universe,
                                               self.config.effort)
        watch.stop()

        report = OnlineUntestableReport(
            netlist_name=self.netlist.name,
            total_faults=len(fault_universe),
            baseline_untestable=baseline,
        )

        attributed: Set[StuckAtFault] = set(baseline)

        def attribute(source: OnlineUntestableSource,
                      identified: Set[StuckAtFault],
                      runtime: float) -> None:
            relevant = identified & fault_set
            new = relevant - attributed
            attributed.update(new)
            report.sources.append(SourceSummary(
                source=source, identified=relevant, attributed=new,
                runtime_seconds=runtime))

        if self.config.run_scan:
            watch.start("scan")
            scan = identify_scan_untestable(self.netlist)
            runtime = watch.stop()
            report.scan_result = scan
            attribute(OnlineUntestableSource.SCAN, scan.untestable, runtime)

        if self.config.run_debug_control:
            watch.start("debug_control")
            ctrl = identify_debug_control_untestable(
                self.netlist, faults=fault_universe,
                baseline_untestable=baseline, effort=self.config.effort)
            runtime = watch.stop()
            report.debug_control_result = ctrl
            attribute(OnlineUntestableSource.DEBUG_CONTROL,
                      ctrl.newly_untestable, runtime)

        if self.config.run_debug_observe:
            watch.start("debug_observe")
            observe = identify_debug_observe_untestable(
                self.netlist, faults=fault_universe,
                baseline_untestable=baseline, effort=self.config.effort)
            runtime = watch.stop()
            report.debug_observe_result = observe
            attribute(OnlineUntestableSource.DEBUG_OBSERVE,
                      observe.newly_untestable, runtime)

        if self.config.run_memory_map and self.memory_map is not None:
            watch.start("memory_map")
            memory = identify_memory_map_untestable(
                self.netlist, memory_map=self.memory_map, faults=fault_universe,
                baseline_untestable=baseline, effort=self.config.effort,
                tie_flop_outputs=self.config.tie_flop_outputs,
                tie_flop_inputs=self.config.tie_flop_inputs)
            runtime = watch.stop()
            report.memory_result = memory
            attribute(OnlineUntestableSource.MEMORY_MAP,
                      memory.newly_untestable, runtime)

        report.runtimes = watch.laps
        return report
