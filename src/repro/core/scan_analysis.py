"""Scan-chain on-line untestable fault identification (paper §3.1).

The scan chain is never exercised in the field, so:

* stuck-at-0 and stuck-at-1 on every scan cell's serial input ``SI`` are
  untestable;
* the stuck-at fault holding the scan enable ``SE`` at its *functional-mode*
  value is untestable (only the fault forcing the scan mode — stuck-at-1 for
  an active-high SE — still matters, because it corrupts mission behaviour);
* every fault on the dedicated buffers/inverters of the serial path (between
  cells and towards the scan-out pin) is untestable, as are the faults on the
  scan-in / scan-out ports themselves and the functional-value stuck-at on
  the scan-enable port.

Identification is a direct structural prune driven by the scan-chain tracer —
no ATPG run is required — exactly as in the paper's flow.  The companion
helper :func:`verify_scan_faults_with_engine` reproduces the paper's sanity
check (tie SE to the functional value and confirm the same faults come back
classified "untestable due to tied value" by the structural engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.faults.fault import StuckAtFault
from repro.faults.models import Fault, FaultModel, resolve_fault_model
from repro.netlist.cells import LOGIC_0, LOGIC_1
from repro.netlist.module import Netlist
from repro.scan.chain_tracer import ScanChain, trace_scan_chains


@dataclass
class ScanAnalysisResult:
    """Scan-related on-line functionally untestable faults."""

    chains: List[ScanChain] = field(default_factory=list)
    serial_input_faults: Set[Fault] = field(default_factory=set)
    scan_enable_faults: Set[Fault] = field(default_factory=set)
    path_faults: Set[Fault] = field(default_factory=set)
    port_faults: Set[Fault] = field(default_factory=set)

    @property
    def untestable(self) -> Set[Fault]:
        return (self.serial_input_faults | self.scan_enable_faults
                | self.path_faults | self.port_faults)

    def counts(self) -> Dict[str, int]:
        return {
            "chains": len(self.chains),
            "cells": sum(c.length for c in self.chains),
            "serial_input": len(self.serial_input_faults),
            "scan_enable": len(self.scan_enable_faults),
            "path": len(self.path_faults),
            "ports": len(self.port_faults),
            "total": len(self.untestable),
        }


def _functional_se_value(cell) -> int:
    """The scan-enable value that keeps the cell in functional mode."""
    active = cell.role_value("scan_enable_active")
    if active is None:
        active = LOGIC_1
    return LOGIC_0 if active == LOGIC_1 else LOGIC_1


def identify_scan_untestable(netlist: Netlist,
                             scan_in_ports: Optional[Sequence[str]] = None,
                             include_clock_pins: bool = False,
                             model: Union[str, FaultModel, None] = None
                             ) -> ScanAnalysisResult:
    """Trace the scan chains and prune the §3.1 fault population.

    Fault enumeration is delegated to the fault model: sites that are
    never exercised in the field (serial inputs, path buffers, scan ports)
    contribute every model fault, while the scan enable — *held* at its
    functional value during the mission — contributes the model's
    constant-site faults (stuck-at: the functional-value fault only;
    transition-delay: both polarities, since a held net never toggles).
    """
    fault_model = resolve_fault_model(model)
    chains = trace_scan_chains(netlist, scan_in_ports)
    result = ScanAnalysisResult(chains=chains)

    scan_enable_nets: Set[str] = set()

    for chain in chains:
        for cell_name in chain.cells:
            inst = netlist.instance(cell_name)
            cell = inst.cell

            si_pin = cell.role_pin("scan_in")
            if si_pin is not None:
                site = inst.pin(si_pin).name
                result.serial_input_faults.update(
                    fault_model.site_faults(site))

            se_pin = cell.role_pin("scan_enable")
            if se_pin is not None:
                site = inst.pin(se_pin).name
                functional_value = _functional_se_value(cell)
                result.scan_enable_faults.update(
                    fault_model.constant_site_faults(site, functional_value))
                se_net = inst.pin(se_pin).net
                if se_net is not None:
                    scan_enable_nets.add(se_net.name)

            if include_clock_pins:
                ck_pin = cell.role_pin("clock")
                if ck_pin is not None:
                    site = inst.pin(ck_pin).name
                    result.path_faults.update(fault_model.site_faults(site))

        for inst_name in chain.path_instances:
            inst = netlist.instance(inst_name)
            for pin in inst.pins.values():
                if pin.net is None:
                    continue
                result.path_faults.update(fault_model.site_faults(pin.name))

        result.port_faults.update(
            fault_model.site_faults(chain.scan_in_port))
        if chain.scan_out_port is not None:
            result.port_faults.update(
                fault_model.site_faults(chain.scan_out_port))

    # The scan-enable distribution: the port (and any net dedicated to SE)
    # held at the functional value is untestable.
    for net_name in scan_enable_nets:
        net = netlist.nets[net_name]
        if net.is_input_port:
            result.port_faults.update(
                fault_model.constant_site_faults(net_name, LOGIC_0))

    return result


def verify_scan_faults_with_engine(netlist: Netlist,
                                   result: ScanAnalysisResult,
                                   sample: Optional[Iterable[StuckAtFault]] = None
                                   ) -> Dict[StuckAtFault, bool]:
    """Cross-check pruned scan faults against the structural engine.

    Ties every scan-enable net to its functional value on a clone of the
    netlist, runs the tied-value analysis and reports, per checked fault,
    whether the engine agrees it is untestable.  This mirrors the TetraMax
    experiment described in §4 of the paper.
    """
    clone = netlist.clone(f"{netlist.name}_se_tied")
    for chain in result.chains:
        for cell_name in chain.cells:
            inst = clone.instance(cell_name)
            se_pin = inst.cell.role_pin("scan_enable")
            if se_pin is None:
                continue
            se_net = inst.pin(se_pin).net
            if se_net is not None:
                se_net.tied = _functional_se_value(inst.cell)

    engine = StructuralUntestabilityEngine(clone, effort=AtpgEffort.TIE)
    to_check = list(sample) if sample is not None else sorted(result.serial_input_faults)
    report = engine.classify(to_check)
    agreement: Dict[StuckAtFault, bool] = {}
    for fault in to_check:
        cls = report.classifications.get(fault)
        agreement[fault] = bool(cls is not None and cls.is_untestable)
    return agreement
