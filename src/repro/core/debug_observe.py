"""Debug unused-observation-logic analysis (paper §3.2.2).

Procedure:

1. disconnect (leave floating) all CPU outputs related to debug  →
   :func:`repro.manipulation.disconnect.disconnect_output_port` on a clone;
2. run the structural-untestability engine;
3. the faults that became untestable — they can only ever reach the floating
   debug outputs — are on-line functionally untestable due to reduced
   observability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.debug.interface import DebugInterface, discover_debug_interface
from repro.faults.fault import StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.manipulation.disconnect import disconnect_output_port
from repro.netlist.module import Netlist


@dataclass
class DebugObserveResult:
    """Outcome of the §3.2.2 analysis."""

    floated_ports: List[str] = field(default_factory=list)
    untestable: Set[StuckAtFault] = field(default_factory=set)
    baseline_untestable: Set[StuckAtFault] = field(default_factory=set)
    engine_runtime_seconds: float = 0.0

    @property
    def newly_untestable(self) -> Set[StuckAtFault]:
        return self.untestable - self.baseline_untestable

    def counts(self) -> Dict[str, int]:
        return {
            "floated_ports": len(self.floated_ports),
            "untestable": len(self.untestable),
            "newly_untestable": len(self.newly_untestable),
        }


def identify_debug_observe_untestable(netlist: Netlist,
                                      interface: Optional[DebugInterface] = None,
                                      faults: Optional[Iterable[StuckAtFault]] = None,
                                      baseline_untestable: Optional[Set[StuckAtFault]] = None,
                                      effort: AtpgEffort = AtpgEffort.TIE,
                                      jobs: int = 1,
                                      backend: Optional[str] = None,
                                      static_prune: bool = True,
                                      static_learning: bool = True,
                                      kernel: Optional[str] = None,
                                      atpg_backend: Optional[str] = None,
                                      atpg_seed: Optional[int] = None,
                                      pool=None,
                                      chunk: Optional[int] = None
                                      ) -> DebugObserveResult:
    """Identify the on-line untestable faults caused by floating debug outputs."""
    interface = interface or discover_debug_interface(netlist)
    if interface is None or not interface.observation_outputs:
        return DebugObserveResult(baseline_untestable=set(baseline_untestable or ()))

    fault_universe = list(faults) if faults is not None else generate_fault_list(netlist).faults()
    if baseline_untestable is None:
        from repro.core.debug_control import compute_baseline_untestable
        baseline_untestable = compute_baseline_untestable(
            netlist, fault_universe, effort, jobs=jobs, backend=backend,
            static_prune=static_prune, static_learning=static_learning,
            kernel=kernel, atpg_backend=atpg_backend, atpg_seed=atpg_seed,
            pool=pool, chunk=chunk)

    manipulated = netlist.clone(f"{netlist.name}_debug_floated")
    floated: List[str] = []
    for port in interface.observation_outputs:
        if port in manipulated.ports and manipulated.ports[port] == "output":
            disconnect_output_port(manipulated, port,
                                   reason="debug observation (debugger disconnected)")
            floated.append(port)

    engine = StructuralUntestabilityEngine(manipulated, effort=effort,
                                           jobs=jobs, backend=backend,
                                           static_prune=static_prune,
                                           static_learning=static_learning,
                                           kernel=kernel,
                                           atpg_backend=atpg_backend,
                                           atpg_seed=atpg_seed,
                                           pool=pool, chunk=chunk)
    report = engine.classify(fault_universe)

    return DebugObserveResult(
        floated_ports=floated,
        untestable=set(report.untestable),
        baseline_untestable=set(baseline_untestable),
        engine_runtime_seconds=report.runtime_seconds,
    )
