"""Debug unused-control-logic analysis (paper §3.2.1).

Procedure (verbatim from the paper, mapped onto this library):

1. connect to ground or Vdd all CPU inputs related to debug and showing a
   constant value in the field  →  :func:`repro.manipulation.tie.tie_port`
   on a clone of the core;
2. run any EDA tool able to identify structural untestable faults  →
   :class:`repro.atpg.engine.StructuralUntestabilityEngine`;
3. remove the identified faults from the fault list  →  the caller prunes
   the returned set.

The faults already untestable in the unmanipulated core (the baseline) are
subtracted so only the *newly* untestable population — the on-line
functionally untestable faults caused by the mission-constant debug inputs —
is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.debug.interface import DebugInterface, discover_debug_interface
from repro.faults.fault import StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.manipulation.tie import tie_port
from repro.netlist.module import Netlist


@dataclass
class DebugControlResult:
    """Outcome of the §3.2.1 analysis."""

    tied_ports: Dict[str, int] = field(default_factory=dict)
    untestable: Set[StuckAtFault] = field(default_factory=set)
    baseline_untestable: Set[StuckAtFault] = field(default_factory=set)
    engine_runtime_seconds: float = 0.0

    @property
    def newly_untestable(self) -> Set[StuckAtFault]:
        return self.untestable - self.baseline_untestable

    def counts(self) -> Dict[str, int]:
        return {
            "tied_ports": len(self.tied_ports),
            "untestable": len(self.untestable),
            "newly_untestable": len(self.newly_untestable),
        }


def compute_baseline_untestable(netlist: Netlist,
                                faults: Optional[Iterable[StuckAtFault]] = None,
                                effort: AtpgEffort = AtpgEffort.TIE,
                                jobs: int = 1,
                                backend: Optional[str] = None,
                                static_prune: bool = True,
                                static_learning: bool = True,
                                kernel: Optional[str] = None,
                                atpg_backend: Optional[str] = None,
                                atpg_seed: Optional[int] = None,
                                pool=None,
                                chunk: Optional[int] = None
                                ) -> Set[StuckAtFault]:
    """Faults untestable in the unmanipulated netlist (structural baseline)."""
    fault_universe = list(faults) if faults is not None else generate_fault_list(netlist).faults()
    engine = StructuralUntestabilityEngine(netlist, effort=effort, jobs=jobs,
                                           backend=backend,
                                           static_prune=static_prune,
                                           static_learning=static_learning,
                                           kernel=kernel,
                                           atpg_backend=atpg_backend,
                                           atpg_seed=atpg_seed,
                                           pool=pool, chunk=chunk)
    report = engine.classify(fault_universe)
    return set(report.untestable)


def identify_debug_control_untestable(netlist: Netlist,
                                      interface: Optional[DebugInterface] = None,
                                      faults: Optional[Iterable[StuckAtFault]] = None,
                                      baseline_untestable: Optional[Set[StuckAtFault]] = None,
                                      effort: AtpgEffort = AtpgEffort.TIE,
                                      jobs: int = 1,
                                      backend: Optional[str] = None,
                                      static_prune: bool = True,
                                      static_learning: bool = True,
                                      kernel: Optional[str] = None,
                                      atpg_backend: Optional[str] = None,
                                      atpg_seed: Optional[int] = None,
                                      pool=None,
                                      chunk: Optional[int] = None
                                      ) -> DebugControlResult:
    """Identify the on-line untestable faults caused by mission-constant
    debug control inputs."""
    interface = interface or discover_debug_interface(netlist)
    if interface is None or not interface.control_inputs:
        return DebugControlResult(baseline_untestable=set(baseline_untestable or ()))

    fault_universe = list(faults) if faults is not None else generate_fault_list(netlist).faults()
    if baseline_untestable is None:
        baseline_untestable = compute_baseline_untestable(
            netlist, fault_universe, effort, jobs=jobs, backend=backend,
            static_prune=static_prune, static_learning=static_learning,
            kernel=kernel, atpg_backend=atpg_backend, atpg_seed=atpg_seed,
            pool=pool, chunk=chunk)

    manipulated = netlist.clone(f"{netlist.name}_debug_tied")
    tied: Dict[str, int] = {}
    for port, value in interface.control_inputs.items():
        if port in manipulated.ports:
            tie_port(manipulated, port, value, reason="debug control (mission constant)")
            tied[port] = value

    engine = StructuralUntestabilityEngine(manipulated, effort=effort,
                                           jobs=jobs, backend=backend,
                                           static_prune=static_prune,
                                           static_learning=static_learning,
                                           kernel=kernel,
                                           atpg_backend=atpg_backend,
                                           atpg_seed=atpg_seed,
                                           pool=pool, chunk=chunk)
    report = engine.classify(fault_universe)

    return DebugControlResult(
        tied_ports=tied,
        untestable=set(report.untestable),
        baseline_untestable=set(baseline_untestable),
        engine_runtime_seconds=report.runtime_seconds,
    )
