"""Memory-map on-line untestable fault analysis (paper §3.3).

Procedure:

1. from the mission memory map, determine which address bits can never change
   (:func:`repro.memory.analysis.constant_address_bits`);
2. connect to ground/Vdd the input *and* output of every flip-flop storing
   one of those frozen bits, in every address-handling register (program
   counter, memory address register, branch target buffer tags/targets,
   EPC, ...) — tieing the output as well propagates the constant into the
   downstream address-manipulation logic (Fig. 6);
3. run the structural-untestability engine and collect the newly untestable
   faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.faults.fault import StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.manipulation.tie import tie_net
from repro.memory.analysis import constant_address_bits
from repro.memory.memory_map import MemoryMap
from repro.netlist.module import Netlist


@dataclass
class MemoryMapResult:
    """Outcome of the §3.3 analysis."""

    constant_bits: Dict[int, int] = field(default_factory=dict)
    tied_flops: List[str] = field(default_factory=list)
    tied_nets: Dict[str, int] = field(default_factory=dict)
    untestable: Set[StuckAtFault] = field(default_factory=set)
    baseline_untestable: Set[StuckAtFault] = field(default_factory=set)
    engine_runtime_seconds: float = 0.0

    @property
    def newly_untestable(self) -> Set[StuckAtFault]:
        return self.untestable - self.baseline_untestable

    def counts(self) -> Dict[str, int]:
        return {
            "constant_bits": len(self.constant_bits),
            "tied_flops": len(self.tied_flops),
            "tied_nets": len(self.tied_nets),
            "untestable": len(self.untestable),
            "newly_untestable": len(self.newly_untestable),
        }


def _address_register_records(netlist: Netlist) -> List[Dict[str, object]]:
    return list(netlist.annotations.get("address_registers", []))


def identify_memory_map_untestable(netlist: Netlist,
                                   memory_map: Optional[MemoryMap] = None,
                                   faults: Optional[Iterable[StuckAtFault]] = None,
                                   baseline_untestable: Optional[Set[StuckAtFault]] = None,
                                   effort: AtpgEffort = AtpgEffort.TIE,
                                   tie_flop_outputs: bool = True,
                                   tie_flop_inputs: bool = True,
                                   jobs: int = 1,
                                   backend: Optional[str] = None,
                                   static_prune: bool = True,
                                   static_learning: bool = True,
                                   kernel: Optional[str] = None,
                                   atpg_backend: Optional[str] = None,
                                   atpg_seed: Optional[int] = None,
                                   pool=None,
                                   chunk: Optional[int] = None
                                   ) -> MemoryMapResult:
    """Identify on-line untestable faults caused by frozen address bits.

    ``tie_flop_outputs`` / ``tie_flop_inputs`` allow the ablation study to
    reproduce the paper's discussion of Fig. 6: tieing only the inputs stops
    the analysis at the flip-flop boundary, while also tieing the outputs
    propagates the constants into the downstream address-manipulation logic.
    """
    memory_map = memory_map or netlist.annotations.get("memory_map")
    if memory_map is None:
        raise ValueError(
            "no memory map supplied and none annotated on the netlist")

    records = _address_register_records(netlist)
    fault_universe = list(faults) if faults is not None else generate_fault_list(netlist).faults()
    if baseline_untestable is None:
        from repro.core.debug_control import compute_baseline_untestable
        baseline_untestable = compute_baseline_untestable(
            netlist, fault_universe, effort, jobs=jobs, backend=backend,
            static_prune=static_prune, static_learning=static_learning,
            kernel=kernel, atpg_backend=atpg_backend, atpg_seed=atpg_seed,
            pool=pool, chunk=chunk)

    constants = constant_address_bits(memory_map)
    result = MemoryMapResult(constant_bits=dict(constants),
                             baseline_untestable=set(baseline_untestable))
    if not records or not constants:
        return result

    manipulated = netlist.clone(f"{netlist.name}_memmap_tied")

    for record in records:
        ff_instances: List[str] = list(record.get("ff_instances", []))
        q_nets: List[str] = list(record.get("q_nets", []))
        address_bits: List[int] = list(record.get("address_bits", []))
        for ff_name, q_net, address_bit in zip(ff_instances, q_nets, address_bits):
            if address_bit not in constants:
                continue
            value = constants[address_bit]
            if ff_name not in manipulated.instances:
                continue
            inst = manipulated.instance(ff_name)
            result.tied_flops.append(ff_name)

            if tie_flop_outputs and q_net in manipulated.nets:
                if manipulated.nets[q_net].tied is None:
                    tie_net(manipulated, q_net, value,
                            reason=f"address bit {address_bit} frozen by memory map")
                    result.tied_nets[q_net] = value

            if tie_flop_inputs:
                data_pin_name = inst.cell.role_pin("data")
                if data_pin_name is not None:
                    data_pin = inst.pin(data_pin_name)
                    if data_pin.net is not None and data_pin.net.tied is None:
                        tie_net(manipulated, data_pin.net.name, value,
                                reason=f"address bit {address_bit} frozen by memory map")
                        result.tied_nets[data_pin.net.name] = value

    engine = StructuralUntestabilityEngine(manipulated, effort=effort,
                                           jobs=jobs, backend=backend,
                                           static_prune=static_prune,
                                           static_learning=static_learning,
                                           kernel=kernel,
                                           atpg_backend=atpg_backend,
                                           atpg_seed=atpg_seed,
                                           pool=pool, chunk=chunk)
    report = engine.classify(fault_universe)

    result.untestable = set(report.untestable)
    result.engine_runtime_seconds = report.runtime_seconds
    return result
