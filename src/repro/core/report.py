"""Rendering of flow results in the layout of the paper's Table I."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.faults.categories import source_label
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.flow import OnlineUntestableReport


def _model_label(report: "OnlineUntestableReport") -> str:
    """Human wording of the report's fault model ("stuck-at", ...); an
    unregistered model name is shown verbatim rather than failing the
    render."""
    from repro.faults.models import get_fault_model

    try:
        return get_fault_model(report.fault_model).label
    except ValueError:
        return report.fault_model


def render_summary_table(report: "OnlineUntestableReport") -> str:
    """Render the Table-I style summary of on-line functionally untestable
    faults, titled with the report's fault model ("stuck-at faults",
    "transition-delay faults", ...)."""
    model_label = _model_label(report)
    table = Table(["Source", "[#]", "[%]"],
                  title=(f"On-line functionally untestable faults — "
                         f"{report.netlist_name} "
                         f"({report.total_faults:,} {model_label} faults)"))
    for row in report.table_rows():
        count = row.get("detail", row["count"])
        if isinstance(count, int):
            count_text = f"{count:,}"
        else:
            count_text = str(count)
        table.add_row([row["source"], count_text, f"{row['percent']:.1f}%"])
    return table.render()


def render_source_details(report: "OnlineUntestableReport",
                          max_faults_per_source: int = 10) -> str:
    """A per-source breakdown with example faults, runtimes and counts."""
    lines: List[str] = []
    lines.append(f"Fault universe: {report.total_faults:,} "
                 f"{_model_label(report)} faults ({report.netlist_name})")
    lines.append(f"Baseline (already untestable before manipulation): "
                 f"{len(report.baseline_untestable):,}")
    for summary in report.sources:
        lines.append("")
        lines.append(f"Source: {source_label(summary.source)}")
        lines.append(f"  identified: {len(summary.identified):,}   "
                     f"attributed (new): {summary.count:,}   "
                     f"runtime: {summary.runtime_seconds:.3f}s")
        examples = sorted(summary.attributed)[:max_faults_per_source]
        for fault in examples:
            lines.append(f"    {fault}")
        remaining = summary.count - len(examples)
        if remaining > 0:
            lines.append(f"    ... and {remaining:,} more")
    lines.append("")
    lines.append(f"TOTAL on-line functionally untestable: "
                 f"{report.total_online_untestable:,} "
                 f"({report.percentage(report.total_online_untestable):.1f}%)")
    return "\n".join(lines)
