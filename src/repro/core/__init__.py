"""On-line functionally untestable fault identification (the paper's contribution).

The flow mirrors §3 of the paper:

1. :mod:`repro.core.scan_analysis` — prune the scan-chain faults found by
   tracing every chain (§3.1);
2. :mod:`repro.core.debug_control` — tie the debug control inputs to their
   mission constants and let the structural engine classify the faults that
   become untestable (§3.2.1);
3. :mod:`repro.core.debug_observe` — float the debug-only observation buses
   and collect the faults that lose their last observation point (§3.2.2);
4. :mod:`repro.core.memory_analysis` — freeze the address bits the mission
   memory map can never toggle and collect the resulting untestable faults
   (§3.3);
5. :mod:`repro.core.flow` — orchestrate the above and produce the Table-I
   style summary.
"""

from repro.core.classification import FaultUniverse, build_fault_universe
from repro.core.scan_analysis import ScanAnalysisResult, identify_scan_untestable
from repro.core.debug_control import DebugControlResult, identify_debug_control_untestable
from repro.core.debug_observe import DebugObserveResult, identify_debug_observe_untestable
from repro.core.memory_analysis import MemoryMapResult, identify_memory_map_untestable
from repro.core.flow import FlowConfig, OnlineUntestableFlow, OnlineUntestableReport
from repro.core.results import SourceSummary
from repro.core.report import render_summary_table, render_source_details

__all__ = [
    "SourceSummary",
    "FaultUniverse",
    "build_fault_universe",
    "ScanAnalysisResult",
    "identify_scan_untestable",
    "DebugControlResult",
    "identify_debug_control_untestable",
    "DebugObserveResult",
    "identify_debug_observe_untestable",
    "MemoryMapResult",
    "identify_memory_map_untestable",
    "FlowConfig",
    "OnlineUntestableFlow",
    "OnlineUntestableReport",
    "render_summary_table",
    "render_source_details",
]
