"""On-line functionally untestable fault identification (the paper's contribution).

The flow mirrors §3 of the paper:

1. :mod:`repro.core.scan_analysis` — prune the scan-chain faults found by
   tracing every chain (§3.1);
2. :mod:`repro.core.debug_control` — tie the debug control inputs to their
   mission constants and let the structural engine classify the faults that
   become untestable (§3.2.1);
3. :mod:`repro.core.debug_observe` — float the debug-only observation buses
   and collect the faults that lose their last observation point (§3.2.2);
4. :mod:`repro.core.memory_analysis` — freeze the address bits the mission
   memory map can never toggle and collect the resulting untestable faults
   (§3.3);
5. :mod:`repro.core.flow` — orchestrate the above and produce the Table-I
   style summary.

Exports are resolved lazily (PEP 562): :mod:`repro.core.registry` is the
dependency-free substrate every pluggable layer (fault models, simulation
kernels, store backends, ATPG backends) imports at definition time, so this
package must be importable without dragging in the flow modules — which
themselves import those layers.
"""

import importlib

#: Public name -> defining module, imported on first attribute access.
_EXPORTS = {
    "FaultUniverse": "repro.core.classification",
    "build_fault_universe": "repro.core.classification",
    "ScanAnalysisResult": "repro.core.scan_analysis",
    "identify_scan_untestable": "repro.core.scan_analysis",
    "DebugControlResult": "repro.core.debug_control",
    "identify_debug_control_untestable": "repro.core.debug_control",
    "DebugObserveResult": "repro.core.debug_observe",
    "identify_debug_observe_untestable": "repro.core.debug_observe",
    "MemoryMapResult": "repro.core.memory_analysis",
    "identify_memory_map_untestable": "repro.core.memory_analysis",
    "FlowConfig": "repro.core.flow",
    "OnlineUntestableFlow": "repro.core.flow",
    "OnlineUntestableReport": "repro.core.flow",
    "SourceSummary": "repro.core.results",
    "render_summary_table": "repro.core.report",
    "render_source_details": "repro.core.report",
    "Registry": "repro.core.registry",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
