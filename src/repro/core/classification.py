"""Fault-universe categories and their containment relations (paper Fig. 1).

Figure 1 of the paper arranges the stuck-at fault universe of the on-line
scenario into nested categories::

    on-line fault universe
      ⊇ on-line functionally untestable
          ⊇ functionally untestable
              ⊇ structurally untestable

with the on-line detectable faults being the complement of the on-line
functionally untestable set.  :func:`build_fault_universe` computes concrete
instances of these sets for a netlist so the relationship can be checked and
reported (the ``fig1`` benchmark regenerates the figure's data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.faults.categories import FaultClass
from repro.faults.fault import StuckAtFault
from repro.faults.faultlist import FaultList, generate_fault_list
from repro.netlist.module import Netlist


@dataclass
class FaultUniverse:
    """The nested fault categories of Fig. 1 for one processor core."""

    all_faults: Set[StuckAtFault] = field(default_factory=set)
    structurally_untestable: Set[StuckAtFault] = field(default_factory=set)
    functionally_untestable: Set[StuckAtFault] = field(default_factory=set)
    online_functionally_untestable: Set[StuckAtFault] = field(default_factory=set)

    @property
    def online_detectable(self) -> Set[StuckAtFault]:
        """Complement of the on-line functionally untestable set."""
        return self.all_faults - self.online_functionally_untestable

    def containment_holds(self) -> bool:
        """Check the subset chain of Fig. 1."""
        return (self.structurally_untestable <= self.functionally_untestable
                and self.functionally_untestable <= self.online_functionally_untestable
                and self.online_functionally_untestable <= self.all_faults)

    def counts(self) -> Dict[str, int]:
        return {
            "all": len(self.all_faults),
            "structurally_untestable": len(self.structurally_untestable),
            "functionally_untestable": len(self.functionally_untestable),
            "online_functionally_untestable": len(self.online_functionally_untestable),
            "online_detectable": len(self.online_detectable),
        }


def build_fault_universe(original: Netlist,
                         functional_constraints: Optional[Dict[str, int]] = None,
                         online_untestable: Optional[Iterable[StuckAtFault]] = None,
                         effort: AtpgEffort = AtpgEffort.TIE,
                         static_prune: bool = True,
                         static_learning: bool = True) -> FaultUniverse:
    """Compute the Fig. 1 categories for a netlist.

    Parameters
    ----------
    original:
        The unmanipulated netlist — its untestable faults are the
        *structurally untestable* set.
    functional_constraints:
        Net values that can never be produced by any instruction sequence
        (e.g. a reset port that is never asserted functionally).  The faults
        untestable under these constraints approximate the *functionally
        untestable* set.
    online_untestable:
        The on-line functionally untestable faults found by the flow; the
        structural and functional sets are folded into it so the Fig. 1
        containment holds by construction (they are genuinely untestable in
        the on-line scenario too).
    """
    fault_list = generate_fault_list(original)
    universe = FaultUniverse(all_faults=set(fault_list.faults()))

    engine = StructuralUntestabilityEngine(original, effort=effort,
                                           static_prune=static_prune,
                                           static_learning=static_learning)
    baseline = engine.classify(fault_list.faults())
    universe.structurally_untestable = set(baseline.untestable)

    if functional_constraints:
        constrained = original.clone(f"{original.name}_functional_view")
        for net, value in functional_constraints.items():
            constrained.net(net).tied = value
        func_engine = StructuralUntestabilityEngine(constrained, effort=effort,
                                                    static_prune=static_prune,
                                                    static_learning=static_learning)
        func_report = func_engine.classify(fault_list.faults())
        universe.functionally_untestable = (
            set(func_report.untestable) | universe.structurally_untestable
        )
    else:
        universe.functionally_untestable = set(universe.structurally_untestable)

    online = set(online_untestable) if online_untestable is not None else set()
    universe.online_functionally_untestable = (
        online | universe.functionally_untestable
    )
    return universe
