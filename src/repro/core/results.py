"""Result objects of the on-line untestable identification flow.

These dataclasses are shared between the legacy single-shot driver
(:class:`repro.core.flow.OnlineUntestableFlow`) and the composable pass
pipeline (:mod:`repro.pipeline`): both produce the same
:class:`OnlineUntestableReport`, so everything downstream (Table-I
rendering, fault-list pruning, the benchmarks) is agnostic about which
driver ran the analyses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.atpg.engine import AtpgEffort
from repro.core.debug_control import DebugControlResult
from repro.core.debug_observe import DebugObserveResult
from repro.core.memory_analysis import MemoryMapResult
from repro.core.scan_analysis import ScanAnalysisResult
from repro.faults.categories import (FaultClass, OnlineUntestableSource,
                                     source_label)
from repro.faults.models import DEFAULT_FAULT_MODEL, Fault, parse_fault
from repro.faults.faultlist import FaultList


@dataclass
class FlowConfig:
    """What the flow runs and how hard the ATPG engine works."""

    effort: AtpgEffort = AtpgEffort.TIE
    # Fault model the flow enumerates and classifies (a registry name from
    # repro.faults.models — "stuck_at" is the paper's universe,
    # "transition" the launch-on-capture transition-delay model).  A cache
    # facet: passes keyed on the fault universe re-run per model.
    fault_model: str = DEFAULT_FAULT_MODEL
    run_scan: bool = True
    run_debug_control: bool = True
    run_debug_observe: bool = True
    run_memory_map: bool = True
    tie_flop_outputs: bool = True   # §3.3 / Fig. 6 ablation knob
    tie_flop_inputs: bool = True
    # Fault-population sharding (repro.simulation.sharded): worker count
    # and backend for the classification engines.  jobs=1 is the serial
    # reference; higher values shard the fault list without changing any
    # verdict, so jobs is deliberately *not* a cache facet.
    jobs: int = 1
    shard_backend: Optional[str] = None
    # Simulation kernel (repro.simulation.kernels): "auto" (None), "int"
    # or "numpy".  Kernels are byte-identical by contract, so like ``jobs``
    # this is a runtime knob, deliberately not a cache facet.
    kernel: Optional[str] = None
    # Durable artifact store spec (repro.store.resolve_store vocabulary:
    # a directory path or "backend:location").  Like ``jobs`` this is a
    # *runtime* knob, deliberately not a cache facet: where artifacts are
    # persisted can never change what an analysis computes.  None (the
    # default) keeps the flow purely in-memory.
    store: Optional[str] = None
    # Static netlist analysis (repro.analysis), FULL effort only:
    # ``static_prune`` classifies statically proven faults UU before any
    # PODEM call; ``static_learning`` lets the remaining searches consult
    # the learned implications and SCOAP guidance.  Both default on; both
    # off is the plain-search oracle path.  Unlike ``jobs`` these *are*
    # cache facets ("static"): pruning shifts abort-limit boundary cases,
    # so results may legitimately differ across settings.
    static_prune: bool = True
    static_learning: bool = True
    # ATPG portfolio backend (repro.atpg.portfolio) used by the FULL-effort
    # search phase, and the seed its randomized members derive per-fault
    # streams from (None reuses the engine seed).  A cache facet ("atpg"):
    # backends agree wherever their searches complete, but abort-limit
    # boundary cases (AU vs a definite verdict) may legitimately differ.
    atpg_backend: Optional[str] = None
    atpg_seed: Optional[int] = None
    # Parallel runtime (repro.runtime): pool lifecycle for the sharded
    # engines ("persistent" reuses one warm worker pool across calls,
    # None/"ephemeral" keeps the per-call runner) and the work-stealing
    # chunk granularity (None = auto).  Like ``jobs``/``kernel`` these are
    # runtime knobs, deliberately *not* cache facets: they can never
    # change what an analysis computes, only how fast.
    pool: Optional[str] = None
    chunk: Optional[int] = None


@dataclass
class SourceSummary:
    """Per-source contribution to the on-line untestable population."""

    source: OnlineUntestableSource
    identified: Set[Fault] = field(default_factory=set)
    attributed: Set[Fault] = field(default_factory=set)
    runtime_seconds: float = 0.0

    @property
    def count(self) -> int:
        return len(self.attributed)


@dataclass
class OnlineUntestableReport:
    """The flow's result — everything needed to print Table I."""

    netlist_name: str
    total_faults: int
    #: Registry name of the fault model the universe was enumerated under.
    fault_model: str = DEFAULT_FAULT_MODEL
    baseline_untestable: Set[Fault] = field(default_factory=set)
    sources: List[SourceSummary] = field(default_factory=list)
    scan_result: Optional[ScanAnalysisResult] = None
    debug_control_result: Optional[DebugControlResult] = None
    debug_observe_result: Optional[DebugObserveResult] = None
    memory_result: Optional[MemoryMapResult] = None
    runtimes: Dict[str, float] = field(default_factory=dict)
    #: Proof-category -> count of faults the static analysis proved
    #: untestable without a PODEM search (empty below FULL effort or with
    #: ``static_prune`` off).
    static_proof_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def online_untestable(self) -> Set[Fault]:
        result: Set[Fault] = set()
        for source in self.sources:
            result |= source.attributed
        return result

    @property
    def total_online_untestable(self) -> int:
        return len(self.online_untestable)

    def percentage(self, count: int) -> float:
        return 100.0 * count / self.total_faults if self.total_faults else 0.0

    def source_count(self, source: OnlineUntestableSource) -> int:
        for summary in self.sources:
            if summary.source is source:
                return summary.count
        return 0

    def table_rows(self) -> List[Dict[str, object]]:
        """Rows in the layout of the paper's Table I."""
        rows: List[Dict[str, object]] = [{
            "source": "Original",
            "count": len(self.baseline_untestable),
            "percent": self.percentage(len(self.baseline_untestable)),
        }]
        scan = self.source_count(OnlineUntestableSource.SCAN)
        debug_ctrl = self.source_count(OnlineUntestableSource.DEBUG_CONTROL)
        debug_obs = self.source_count(OnlineUntestableSource.DEBUG_OBSERVE)
        memory = self.source_count(OnlineUntestableSource.MEMORY_MAP)
        rows.append({"source": "Scan", "count": scan,
                     "percent": self.percentage(scan)})
        rows.append({"source": "Debug", "count": debug_ctrl + debug_obs,
                     "detail": f"{debug_ctrl}+{debug_obs}",
                     "percent": self.percentage(debug_ctrl + debug_obs)})
        rows.append({"source": "Memory", "count": memory,
                     "percent": self.percentage(memory)})
        total = self.total_online_untestable
        rows.append({"source": "TOTAL", "count": total,
                     "percent": self.percentage(total)})
        return rows

    def to_table(self) -> str:
        from repro.core.report import render_summary_table
        return render_summary_table(self)

    def apply_to_fault_list(self, fault_list: FaultList) -> FaultList:
        """Mark the identified faults in a fault list and return the pruned list."""
        for summary in self.sources:
            fault_list.classify_many(summary.attributed, FaultClass.UT, summary.source)
        return fault_list.prune(self.online_untestable)

    # ------------------------------------------------------------------ #
    # serialization — the persistable core of the report
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, object]:
        """The JSON-serializable core of the report.

        Covers everything Table I and the sweep aggregation need — fault
        populations as ``"site s-a-V"`` strings, per-source sets, runtimes.
        The per-analysis detail objects (``scan_result`` & friends) are
        in-memory conveniences and are *not* serialized; a report restored
        with :meth:`from_json` has them set to ``None``.
        """
        payload: Dict[str, object] = {
            "schema": 1,
            "netlist": self.netlist_name,
            "fault_model": self.fault_model,
            "total_faults": self.total_faults,
            "total_online_untestable": self.total_online_untestable,
            "baseline_untestable": sorted(str(f)
                                          for f in self.baseline_untestable),
            "sources": [{
                "source": source_label(summary.source),
                "identified": sorted(str(f) for f in summary.identified),
                "attributed": sorted(str(f) for f in summary.attributed),
                "runtime_seconds": summary.runtime_seconds,
            } for summary in self.sources],
            "table": self.table_rows(),
            "runtimes": dict(self.runtimes),
        }
        if self.static_proof_counts:
            # Emitted only when the static prover ran: reports produced at
            # tie/random effort keep their historical byte-exact JSON.
            payload["static_proof_counts"] = {
                k: self.static_proof_counts[k]
                for k in sorted(self.static_proof_counts)}
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "OnlineUntestableReport":
        def parse_faults(items) -> Set[Fault]:
            return {parse_fault(text) for text in items}

        def parse_source(value: str):
            try:
                return OnlineUntestableSource(value)
            except ValueError:
                return value  # custom pass source — kept as its raw label

        report = cls(
            netlist_name=data["netlist"],
            total_faults=int(data["total_faults"]),
            fault_model=str(data.get("fault_model", DEFAULT_FAULT_MODEL)),
            baseline_untestable=parse_faults(data.get("baseline_untestable", ())),
            runtimes={k: float(v)
                      for k, v in (data.get("runtimes") or {}).items()},
            static_proof_counts={
                k: int(v)
                for k, v in (data.get("static_proof_counts") or {}).items()},
        )
        for entry in data.get("sources", ()):
            report.sources.append(SourceSummary(
                source=parse_source(entry["source"]),
                identified=parse_faults(entry.get("identified", ())),
                attributed=parse_faults(entry.get("attributed", ())),
                runtime_seconds=float(entry.get("runtime_seconds", 0.0)),
            ))
        return report

    @classmethod
    def from_json(cls, text: str) -> "OnlineUntestableReport":
        return cls.from_json_dict(json.loads(text))
