"""One process-global registry helper behind every pluggable layer.

Four subsystems grew the same shape independently — a module-level dict
mapping a short name to an implementation, a ``register_*`` helper, and a
``resolve_*`` lookup whose :class:`ValueError` lists the valid names:

- :mod:`repro.faults.models` (fault models),
- :mod:`repro.simulation.kernels` (simulation kernels),
- :mod:`repro.store.base` (artifact-store backends),
- :mod:`repro.atpg.portfolio` (ATPG backends).

:class:`Registry` is the extracted common core.  It is a
:class:`~collections.abc.MutableMapping`, so existing idioms like
``STORE_BACKENDS["http"] = HttpStore`` keep working unchanged, iteration
preserves registration order (the dict contract), and the uniform
``unknown <kind> <spec!r>; expected one of: <names>`` error message means
every layer's typo diagnostics read the same.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, MutableMapping, Tuple, TypeVar

T = TypeVar("T")


class Registry(MutableMapping, Generic[T]):
    """An ordered name -> implementation mapping with uniform errors.

    ``kind`` is the human-readable noun used in error messages ("fault
    model", "simulation kernel", "store backend", "ATPG backend").
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: Dict[str, T] = {}

    # ------------------------------------------------------------------ #
    # MutableMapping protocol (registration order preserved)
    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> T:
        return self._items[name]

    def __setitem__(self, name: str, value: T) -> None:
        if not name:
            raise ValueError(f"{self.kind} must have a non-empty name")
        self._items[name] = value

    def __delitem__(self, name: str) -> None:
        del self._items[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (f"Registry({self.kind!r}, "
                f"names=[{', '.join(self._items)}])")

    # ------------------------------------------------------------------ #
    # the shared registry surface
    # ------------------------------------------------------------------ #
    def register(self, name: str, value: T) -> T:
        """Register ``value`` under ``name``; returns the value."""
        self[name] = value
        return value

    def names(self) -> Tuple[str, ...]:
        """Registered names, registration order."""
        return tuple(self._items)

    def resolve(self, name: str) -> T:
        """Look up ``name``; unknown names raise the uniform ValueError."""
        try:
            return self._items[name]
        except KeyError:
            raise ValueError(self.unknown_message(name)) from None

    def unknown_message(self, spec: object) -> str:
        """The uniform unknown-name diagnostic, for custom resolvers."""
        known = ", ".join(self._items)
        return f"unknown {self.kind} {spec!r}; expected one of: {known}"
