"""Netlist clean-up passes.

The generators in :mod:`repro.soc` occasionally leave dangling combinational
logic behind (an unused carry-out, a padded multiplexer leg).  A synthesis
tool would sweep such logic away; :func:`remove_dangling_logic` performs the
same clean-up so the generated cores resemble a synthesised netlist and the
"Original" (pre-manipulation) untestable-fault count stays small, as in the
paper's case study.
"""

from __future__ import annotations

from typing import List

from repro.netlist.module import Netlist


def dangling_instances(netlist: Netlist) -> List[str]:
    """Combinational instances none of whose outputs drive a load or a port."""
    result = []
    for inst in netlist.instances.values():
        if inst.is_sequential:
            continue
        useful = False
        for pin in inst.output_pins():
            net = pin.net
            if net is None:
                continue
            if net.loads or net.is_output_port:
                useful = True
                break
        if not useful:
            result.append(inst.name)
    return result


def remove_dangling_logic(netlist: Netlist, max_iterations: int = 100) -> int:
    """Iteratively remove dangling combinational instances.

    Returns the number of instances removed.  Sequential cells, tie cells
    that still drive something, and anything reaching an output port are
    never touched.
    """
    removed_total = 0
    for _ in range(max_iterations):
        dangling = dangling_instances(netlist)
        if not dangling:
            break
        for name in dangling:
            netlist.remove_instance(name)
        removed_total += len(dangling)
    # Drop nets that lost both driver and loads and are not ports.
    orphan_nets = [
        name for name, net in netlist.nets.items()
        if net.driver is None and not net.loads
        and not net.is_input_port and not net.is_output_port
    ]
    for name in orphan_nets:
        del netlist.nets[name]
    return removed_total
