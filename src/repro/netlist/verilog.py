"""Structural-Verilog reader and writer.

Only the subset needed for flat gate-level netlists is supported (the same
subset an ATPG tool consumes): one module per file, scalar ports, named
port connections, no behavioural constructs.  Escaped identifiers and bit
selects such as ``addr[3]`` are treated as plain net names.

The writer emits a netlist that the parser can read back (round-trip safe);
this is exercised by property-based tests.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.cells import Library, standard_library
from repro.netlist.module import INPUT, OUTPUT, Netlist


class VerilogParseError(Exception):
    """Raised on malformed structural Verilog input."""


_IDENT = r"[A-Za-z_][A-Za-z0-9_$.\[\]]*"
_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_PORT_DECL_RE = re.compile(rf"(input|output)\s+(.+?);", re.S)
_INSTANCE_RE = re.compile(
    rf"({_IDENT})\s+(\\?{_IDENT})\s*\((.*?)\)\s*;", re.S)
_CONN_RE = re.compile(rf"\.({_IDENT})\s*\(\s*(\\?{_IDENT})?\s*\)")
_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.S)


def _sanitize(name: str) -> str:
    return name.strip().lstrip("\\")


def parse_verilog(text: str, library: Optional[Library] = None) -> Netlist:
    """Parse a flat structural-Verilog module into a :class:`Netlist`."""
    library = library or standard_library()
    text = _COMMENT_RE.sub("", text)

    m = _MODULE_RE.search(text)
    if m is None:
        raise VerilogParseError("no module declaration found")
    module_name = m.group(1)
    body_start = m.end()
    end = text.find("endmodule", body_start)
    if end < 0:
        raise VerilogParseError(f"module {module_name!r} missing endmodule")
    body = text[body_start:end]

    netlist = Netlist(module_name, library)

    # Port directions come from the input/output declarations in the body.
    consumed_spans: List[Tuple[int, int]] = []
    for decl in _PORT_DECL_RE.finditer(body):
        direction = INPUT if decl.group(1) == "input" else OUTPUT
        for raw in decl.group(2).split(","):
            name = _sanitize(raw)
            if not name:
                continue
            netlist.add_port(name, direction)
        consumed_spans.append(decl.span())

    # Remove the port declarations so they are not matched as instances.
    chunks = []
    prev = 0
    for start, stop in consumed_spans:
        chunks.append(body[prev:start])
        prev = stop
    chunks.append(body[prev:])
    instance_body = "".join(chunks)

    for inst_match in _INSTANCE_RE.finditer(instance_body):
        cell_name = inst_match.group(1)
        inst_name = _sanitize(inst_match.group(2))
        if cell_name in ("wire", "module", "endmodule", "input", "output"):
            continue
        if cell_name not in library:
            raise VerilogParseError(
                f"unknown cell {cell_name!r} instantiated as {inst_name!r}"
            )
        connections: Dict[str, str] = {}
        for conn in _CONN_RE.finditer(inst_match.group(3)):
            pin = conn.group(1)
            net = conn.group(2)
            if net is None:
                continue  # unconnected pin: .PIN()
            connections[pin] = _sanitize(net)
        netlist.add_instance(inst_name, cell_name, connections)

    return netlist


def _escape(name: str) -> str:
    """Escape identifiers containing characters Verilog requires escaping for."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name):
        return name
    return name  # kept readable; parser accepts [] and . in identifiers


def write_verilog(netlist: Netlist) -> str:
    """Serialise a netlist as flat structural Verilog."""
    lines: List[str] = []
    port_names = list(netlist.ports)
    lines.append(f"module {netlist.name} (")
    lines.append("    " + ",\n    ".join(_escape(p) for p in port_names))
    lines.append(");")
    lines.append("")

    inputs = [p for p, d in netlist.ports.items() if d == INPUT]
    outputs = [p for p, d in netlist.ports.items() if d == OUTPUT]
    if inputs:
        lines.append("  input " + ", ".join(_escape(p) for p in inputs) + ";")
    if outputs:
        lines.append("  output " + ", ".join(_escape(p) for p in outputs) + ";")
    lines.append("")

    internal = [n for n in netlist.nets if n not in netlist.ports]
    for net in sorted(internal):
        lines.append(f"  wire {_escape(net)};")
    if internal:
        lines.append("")

    for inst in netlist.instances.values():
        conns = []
        for port, pin in inst.pins.items():
            if pin.net is None:
                conns.append(f".{port}()")
            else:
                conns.append(f".{port}({_escape(pin.net.name)})")
        lines.append(f"  {inst.cell.name} {_escape(inst.name)} ({', '.join(conns)});")

    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)
