"""Standard-cell library with three-valued (0/1/X) semantics.

Every cell used by the SoC generators, the scan-insertion pass and the ATPG
engine is defined here.  Cells evaluate over the three-valued domain
``{LOGIC_0, LOGIC_1, LOGIC_X}``; the five-valued D-calculus needed by PODEM is
obtained in :mod:`repro.atpg.d_algebra` by evaluating the same functions
componentwise on (good-machine, faulty-machine) value pairs, so no cell needs
a separate D-aware model.

Sequential cells (DFF variants, mux-scan flip-flops) carry pin-role metadata
(`clock`, `data`, `scan_in`, `scan_enable`, `reset`, ...) used by the scan
chain tracer, the sequential simulator and the on-line untestability
analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

# Three-valued logic encoding.  Chosen as small ints so hot simulation loops
# can use them directly as list indices.
LOGIC_0 = 0
LOGIC_1 = 1
LOGIC_X = 2

_VALID_VALUES = (LOGIC_0, LOGIC_1, LOGIC_X)


def v_not(a: int) -> int:
    """Three-valued NOT."""
    if a == LOGIC_X:
        return LOGIC_X
    return LOGIC_1 - a


def v_and(*args: int) -> int:
    """Three-valued AND of any arity: a single 0 dominates any X."""
    saw_x = False
    for a in args:
        if a == LOGIC_0:
            return LOGIC_0
        if a == LOGIC_X:
            saw_x = True
    return LOGIC_X if saw_x else LOGIC_1


def v_or(*args: int) -> int:
    """Three-valued OR of any arity: a single 1 dominates any X."""
    saw_x = False
    for a in args:
        if a == LOGIC_1:
            return LOGIC_1
        if a == LOGIC_X:
            saw_x = True
    return LOGIC_X if saw_x else LOGIC_0


def v_xor(*args: int) -> int:
    """Three-valued XOR of any arity: any X makes the result X."""
    acc = LOGIC_0
    for a in args:
        if a == LOGIC_X:
            return LOGIC_X
        acc ^= a
    return acc


def v_mux(sel: int, d0: int, d1: int) -> int:
    """Three-valued 2:1 multiplexer: returns d0 when sel=0, d1 when sel=1.

    When the select is X the output is only known if both data inputs agree.
    """
    if sel == LOGIC_0:
        return d0
    if sel == LOGIC_1:
        return d1
    if d0 == d1 and d0 != LOGIC_X:
        return d0
    return LOGIC_X


def v_buf(a: int) -> int:
    """Three-valued buffer (identity)."""
    return a


EvalFn = Callable[[Mapping[str, int]], Dict[str, int]]


@dataclass(frozen=True)
class Cell:
    """A library cell.

    Parameters
    ----------
    name:
        Library cell name, e.g. ``"NAND2"``.
    inputs / outputs:
        Ordered pin names.
    eval_fn:
        For combinational cells, maps input pin values to output pin values
        (three-valued).  For sequential cells, ``eval_fn`` computes the
        *next state* and the combinational outputs given inputs plus the
        pseudo-input ``"__state__"`` holding the current state; the Q output
        simply reflects the stored state, handled by the sequential
        simulator.
    sequential:
        True for state-holding cells.
    roles:
        Pin-role metadata for sequential cells: maps role name
        (``"clock"``, ``"data"``, ``"reset"``, ``"reset_active"``,
        ``"scan_in"``, ``"scan_enable"``, ``"scan_enable_active"``,
        ``"state_output"``, ``"scan_out"``, ``"debug_in"``, ``"debug_enable"``,
        ``"debug_out"``) to a pin name (or, for the ``*_active`` roles, to a
        logic value).
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    eval_fn: EvalFn
    sequential: bool = False
    roles: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    @property
    def pins(self) -> Tuple[str, ...]:
        return self.inputs + self.outputs

    def is_input(self, pin: str) -> bool:
        return pin in self.inputs

    def is_output(self, pin: str) -> bool:
        return pin in self.outputs

    def role_pin(self, role: str) -> Optional[str]:
        """Return the pin playing ``role``, or None."""
        value = self.roles.get(role)
        return value if isinstance(value, str) else None

    def role_value(self, role: str) -> Optional[int]:
        """Return the logic value associated with ``role`` (for *_active roles)."""
        value = self.roles.get(role)
        return value if isinstance(value, int) else None

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate the cell's combinational function over three-valued inputs."""
        for pin_name, value in inputs.items():
            if value not in _VALID_VALUES:
                raise ValueError(
                    f"invalid logic value {value!r} on pin {pin_name!r} of {self.name}"
                )
        return self.eval_fn(inputs)

    def __reduce__(self):
        # Cells close over their evaluation functions, which cannot be
        # pickled.  Standard-library cells — the only ones the generators
        # emit — are singletons, so they pickle as a name lookup; this is
        # what lets whole netlists ship to sharded-simulation worker
        # processes.  Custom cells fall back to the default protocol (and
        # fail loudly if their eval_fn is a closure).
        lib = _STANDARD_LIBRARY
        if lib is not None and self.name in lib and lib.get(self.name) is self:
            return (_standard_cell, (self.name,))
        return super().__reduce__()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "seq" if self.sequential else "comb"
        return f"Cell({self.name}, {kind}, in={self.inputs}, out={self.outputs})"


def _standard_cell(name: str) -> "Cell":
    """Pickle hook: resolve a standard-library cell by name."""
    return standard_library().get(name)


class Library:
    """A named collection of :class:`Cell` definitions."""

    def __init__(self, name: str = "generic") -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}

    def add(self, cell: Cell) -> Cell:
        if cell.name in self._cells:
            raise ValueError(
                f"cell {cell.name!r} already defined in "
                f"library {self.name!r}")
        self._cells[cell.name] = cell
        return cell

    def get(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not found in library {self.name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterable[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell_names(self) -> Tuple[str, ...]:
        return tuple(self._cells)

    def __reduce__(self):
        if self is _STANDARD_LIBRARY:
            return (standard_library, ())
        return super().__reduce__()


def _comb(name: str, inputs: Tuple[str, ...], outputs: Tuple[str, ...],
          fn: Callable[..., Dict[str, int]], description: str = "") -> Cell:
    def eval_fn(values: Mapping[str, int]) -> Dict[str, int]:
        return fn(*[values[p] for p in inputs])

    return Cell(name=name, inputs=inputs, outputs=outputs, eval_fn=eval_fn,
                description=description)


def _single_output(fn: Callable[..., int],
                   out: str = "Y") -> Callable[..., Dict[str, int]]:
    def wrapper(*args: int) -> Dict[str, int]:
        return {out: fn(*args)}

    return wrapper


def _make_combinational_cells(lib: Library) -> None:
    a_to_d = ("A", "B", "C", "D")

    lib.add(_comb("TIE0", (), ("Y",), lambda: {"Y": LOGIC_0},
                  "Constant logic 0 driver"))
    lib.add(_comb("TIE1", (), ("Y",), lambda: {"Y": LOGIC_1},
                  "Constant logic 1 driver"))
    lib.add(_comb("BUF", ("A",), ("Y",), _single_output(v_buf), "Buffer"))
    lib.add(_comb("INV", ("A",), ("Y",), _single_output(v_not), "Inverter"))

    for arity in (2, 3, 4):
        ins = a_to_d[:arity]
        lib.add(_comb(f"AND{arity}", ins, ("Y",), _single_output(v_and),
                      f"{arity}-input AND"))
        lib.add(_comb(f"NAND{arity}", ins, ("Y",),
                      _single_output(lambda *a: v_not(v_and(*a))),
                      f"{arity}-input NAND"))
        lib.add(_comb(f"OR{arity}", ins, ("Y",), _single_output(v_or),
                      f"{arity}-input OR"))
        lib.add(_comb(f"NOR{arity}", ins, ("Y",),
                      _single_output(lambda *a: v_not(v_or(*a))),
                      f"{arity}-input NOR"))

    lib.add(_comb("XOR2", ("A", "B"), ("Y",), _single_output(v_xor), "2-input XOR"))
    lib.add(_comb("XNOR2", ("A", "B"), ("Y",),
                  _single_output(lambda a, b: v_not(v_xor(a, b))), "2-input XNOR"))
    lib.add(_comb("MUX2", ("D0", "D1", "S"), ("Y",),
                  lambda d0, d1, s: {"Y": v_mux(s, d0, d1)},
                  "2:1 multiplexer, S=0 selects D0"))
    lib.add(_comb("AO21", ("A", "B", "C"), ("Y",),
                  _single_output(lambda a, b, c: v_or(v_and(a, b), c)),
                  "AND-OR: Y = (A&B)|C"))
    lib.add(_comb("OA21", ("A", "B", "C"), ("Y",),
                  _single_output(lambda a, b, c: v_and(v_or(a, b), c)),
                  "OR-AND: Y = (A|B)&C"))
    lib.add(_comb("AOI21", ("A", "B", "C"), ("Y",),
                  _single_output(lambda a, b, c: v_not(v_or(v_and(a, b), c))),
                  "AND-OR-invert"))
    lib.add(_comb("OAI21", ("A", "B", "C"), ("Y",),
                  _single_output(lambda a, b, c: v_not(v_and(v_or(a, b), c))),
                  "OR-AND-invert"))
    lib.add(_comb("HA", ("A", "B"), ("S", "CO"),
                  lambda a, b: {"S": v_xor(a, b), "CO": v_and(a, b)},
                  "Half adder"))
    lib.add(_comb("FA", ("A", "B", "CI"), ("S", "CO"),
                  lambda a, b, ci: {
                      "S": v_xor(a, b, ci),
                      "CO": v_or(v_and(a, b), v_and(a, ci), v_and(b, ci)),
                  },
                  "Full adder"))


def _dff_eval(values: Mapping[str, int]) -> Dict[str, int]:
    # Next-state function of a plain DFF: captures D.
    return {"__next__": values["D"]}


def _dffr_eval(values: Mapping[str, int]) -> Dict[str, int]:
    # Active-low asynchronous reset: RN=0 forces state to 0.
    rn = values["RN"]
    if rn == LOGIC_0:
        return {"__next__": LOGIC_0}
    if rn == LOGIC_X:
        return {"__next__": LOGIC_X}
    return {"__next__": values["D"]}


def _sdff_eval(values: Mapping[str, int]) -> Dict[str, int]:
    # Mux-scan flip-flop: SE=1 captures SI, SE=0 captures D (Fig. 2 of the paper).
    return {"__next__": v_mux(values["SE"], values["D"], values["SI"])}


def _sdffr_eval(values: Mapping[str, int]) -> Dict[str, int]:
    rn = values["RN"]
    if rn == LOGIC_0:
        return {"__next__": LOGIC_0}
    if rn == LOGIC_X:
        return {"__next__": LOGIC_X}
    return {"__next__": v_mux(values["SE"], values["D"], values["SI"])}


def _dbgff_eval(values: Mapping[str, int]) -> Dict[str, int]:
    # Debug-controllable flip-flop (Fig. 4): DE=1 loads the debug input DI.
    return {"__next__": v_mux(values["DE"], values["D"], values["DI"])}


def _make_sequential_cells(lib: Library) -> None:
    lib.add(Cell(
        name="DFF",
        inputs=("D", "CK"),
        outputs=("Q",),
        eval_fn=_dff_eval,
        sequential=True,
        roles={"clock": "CK", "data": "D", "state_output": "Q"},
        description="Positive-edge D flip-flop",
    ))
    lib.add(Cell(
        name="DFFR",
        inputs=("D", "CK", "RN"),
        outputs=("Q",),
        eval_fn=_dffr_eval,
        sequential=True,
        roles={"clock": "CK", "data": "D", "reset": "RN",
               "reset_active": LOGIC_0, "state_output": "Q"},
        description="D flip-flop with active-low asynchronous reset",
    ))
    lib.add(Cell(
        name="SDFF",
        inputs=("D", "SI", "SE", "CK"),
        outputs=("Q",),
        eval_fn=_sdff_eval,
        sequential=True,
        roles={"clock": "CK", "data": "D", "scan_in": "SI",
               "scan_enable": "SE", "scan_enable_active": LOGIC_1,
               "state_output": "Q", "scan_out": "Q"},
        description="Mux-scan D flip-flop (scan shifts when SE=1)",
    ))
    lib.add(Cell(
        name="SDFFR",
        inputs=("D", "SI", "SE", "CK", "RN"),
        outputs=("Q",),
        eval_fn=_sdffr_eval,
        sequential=True,
        roles={"clock": "CK", "data": "D", "scan_in": "SI",
               "scan_enable": "SE", "scan_enable_active": LOGIC_1,
               "reset": "RN", "reset_active": LOGIC_0,
               "state_output": "Q", "scan_out": "Q"},
        description="Mux-scan D flip-flop with active-low reset",
    ))
    lib.add(Cell(
        name="DBGFF",
        inputs=("D", "DI", "DE", "CK"),
        outputs=("Q",),
        eval_fn=_dbgff_eval,
        sequential=True,
        roles={"clock": "CK", "data": "D", "debug_in": "DI",
               "debug_enable": "DE", "debug_enable_active": LOGIC_1,
               "state_output": "Q"},
        description="D flip-flop with debug-override mux (Fig. 4 of the paper)",
    ))


_STANDARD_LIBRARY: Optional[Library] = None


def standard_library() -> Library:
    """Return the shared standard-cell library (built once, cached)."""
    global _STANDARD_LIBRARY
    if _STANDARD_LIBRARY is None:
        lib = Library("repro_std")
        _make_combinational_cells(lib)
        _make_sequential_cells(lib)
        _STANDARD_LIBRARY = lib
    return _STANDARD_LIBRARY
