"""Convenience layer for constructing netlists programmatically.

The SoC generators in :mod:`repro.soc` describe hardware in terms of buses
and gate-level helper calls; :class:`NetlistBuilder` turns those calls into
:class:`~repro.netlist.module.Netlist` structure, handling net-name
uniquification and instance naming.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.netlist.cells import Library
from repro.netlist.module import INPUT, OUTPUT, Instance, Netlist


class NetlistBuilder:
    """Incrementally builds a flat :class:`Netlist`."""

    def __init__(self, name: str, library: Optional[Library] = None) -> None:
        self.netlist = Netlist(name, library)
        self._net_counter = 0
        self._inst_counter: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # ports and nets
    # ------------------------------------------------------------------ #
    def add_input(self, name: str) -> str:
        self.netlist.add_port(name, INPUT)
        return name

    def add_output(self, name: str) -> str:
        self.netlist.add_port(name, OUTPUT)
        return name

    def add_input_bus(self, name: str, width: int) -> List[str]:
        """Declare ``width`` input ports ``name[0] .. name[width-1]`` (LSB first)."""
        return [self.add_input(f"{name}[{i}]") for i in range(width)]

    def add_output_bus(self, name: str, width: int) -> List[str]:
        return [self.add_output(f"{name}[{i}]") for i in range(width)]

    def new_net(self, hint: str = "n") -> str:
        """Return a fresh internal net name."""
        while True:
            self._net_counter += 1
            name = f"{hint}_{self._net_counter}"
            if name not in self.netlist.nets:
                self.netlist.get_or_create_net(name)
                return name

    def new_bus(self, hint: str, width: int) -> List[str]:
        return [self.new_net(f"{hint}{i}") for i in range(width)]

    def _unique_instance_name(self, prefix: str) -> str:
        count = self._inst_counter.get(prefix, 0)
        while True:
            name = f"{prefix}_{count}"
            count += 1
            if name not in self.netlist.instances:
                self._inst_counter[prefix] = count
                return name

    # ------------------------------------------------------------------ #
    # gate-level helpers
    # ------------------------------------------------------------------ #
    def cell(self, cell_name: str, connections: Dict[str, str],
             name: Optional[str] = None) -> Instance:
        """Instantiate an arbitrary library cell."""
        inst_name = name or self._unique_instance_name(cell_name.lower())
        return self.netlist.add_instance(inst_name, cell_name, connections)

    def gate(self, cell_name: str, *input_nets: str, output: Optional[str] = None,
             name: Optional[str] = None) -> str:
        """Instantiate a single-output combinational gate; returns the output net.

        Inputs are assigned to the cell's input pins in declaration order.
        """
        cell = self.netlist.library.get(cell_name)
        if len(cell.outputs) != 1:
            raise ValueError(f"gate() requires a single-output cell, got {cell_name}")
        if len(input_nets) != len(cell.inputs):
            raise ValueError(
                f"{cell_name} expects {len(cell.inputs)} inputs, got {len(input_nets)}"
            )
        out = output or self.new_net(cell_name.lower())
        connections = dict(zip(cell.inputs, input_nets))
        connections[cell.outputs[0]] = out
        self.cell(cell_name, connections, name=name)
        return out

    def buf(self, a: str, output: Optional[str] = None,
            name: Optional[str] = None) -> str:
        return self.gate("BUF", a, output=output, name=name)

    def inv(self, a: str, output: Optional[str] = None,
            name: Optional[str] = None) -> str:
        return self.gate("INV", a, output=output, name=name)

    def and_(self, *nets: str, output: Optional[str] = None) -> str:
        return self._tree("AND", nets, output)

    def or_(self, *nets: str, output: Optional[str] = None) -> str:
        return self._tree("OR", nets, output)

    def nand(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("NAND2", a, b, output=output)

    def nor(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("NOR2", a, b, output=output)

    def xor(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("XOR2", a, b, output=output)

    def xnor(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("XNOR2", a, b, output=output)

    def mux(self, sel: str, d0: str, d1: str, output: Optional[str] = None) -> str:
        """2:1 mux: sel=0 selects d0."""
        return self.gate("MUX2", d0, d1, sel, output=output)

    def tie0(self, output: Optional[str] = None) -> str:
        return self.gate("TIE0", output=output)

    def tie1(self, output: Optional[str] = None) -> str:
        return self.gate("TIE1", output=output)

    def _tree(self, base: str, nets: Sequence[str], output: Optional[str]) -> str:
        """Build a balanced tree of 2/3/4-input gates for wide AND/OR."""
        if not nets:
            raise ValueError(f"{base} tree requires at least one input")
        level = list(nets)
        if len(level) == 1:
            return self.buf(level[0], output=output)
        while len(level) > 1:
            nxt: List[str] = []
            i = 0
            while i < len(level):
                chunk = level[i:i + 4]
                i += 4
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    is_last = i >= len(level) and not nxt
                    out = output if (is_last and len(chunk) == len(level)) else None
                    nxt.append(self.gate(f"{base}{len(chunk)}", *chunk, output=out))
            level = nxt
        if output is not None and level[0] != output:
            return self.buf(level[0], output=output)
        return level[0]

    # ------------------------------------------------------------------ #
    # sequential helpers
    # ------------------------------------------------------------------ #
    def dff(self, d: str, clk: str, q: Optional[str] = None,
            reset_n: Optional[str] = None, name: Optional[str] = None) -> str:
        """Instantiate a DFF (or DFFR when ``reset_n`` is given); returns Q net."""
        q_net = q or self.new_net("q")
        if reset_n is None:
            self.cell("DFF", {"D": d, "CK": clk, "Q": q_net}, name=name)
        else:
            self.cell("DFFR", {"D": d, "CK": clk, "RN": reset_n, "Q": q_net}, name=name)
        return q_net

    def sdff(self, d: str, si: str, se: str, clk: str, q: Optional[str] = None,
             reset_n: Optional[str] = None, name: Optional[str] = None) -> str:
        """Instantiate a mux-scan flip-flop; returns the Q net."""
        q_net = q or self.new_net("q")
        if reset_n is None:
            self.cell("SDFF", {"D": d, "SI": si, "SE": se, "CK": clk, "Q": q_net},
                      name=name)
        else:
            self.cell("SDFFR", {"D": d, "SI": si, "SE": se, "CK": clk,
                                "RN": reset_n, "Q": q_net}, name=name)
        return q_net

    def register(self, d_bus: Sequence[str], clk: str, prefix: str = "reg",
                 reset_n: Optional[str] = None) -> List[str]:
        """A word of plain DFFs; returns the Q bus."""
        return [
            self.dff(d, clk, q=self.new_net(f"{prefix}_q{i}"), reset_n=reset_n,
                     name=(f"{prefix}_ff{i}"
                           if f"{prefix}_ff{i}" not in self.netlist.instances
                           else None))
            for i, d in enumerate(d_bus)
        ]

    def build(self) -> Netlist:
        """Return the constructed netlist."""
        return self.netlist
