"""Structural sanity checks run by the SoC builder and available to users."""

from __future__ import annotations

from typing import List

from repro.netlist.module import Netlist
from repro.netlist.traversal import topological_instances


class NetlistValidationError(Exception):
    """Raised when a netlist violates a structural invariant."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = problems
        preview = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        super().__init__(f"{len(problems)} netlist problem(s): {preview}{more}")


def check_netlist(netlist: Netlist, allow_floating_inputs: bool = False,
                  allow_dangling_outputs: bool = True) -> List[str]:
    """Return a list of human-readable structural problems (empty = clean).

    Checks performed:

    * every instance input pin is connected to a driven net (unless the net
      is tied by manipulation, or ``allow_floating_inputs``);
    * no net has more than one driver (enforced at construction, re-checked);
    * output ports are driven;
    * the combinational portion is acyclic.
    """
    problems: List[str] = []

    for inst in netlist.instances.values():
        for pin in inst.input_pins():
            net = pin.net
            if net is None:
                if not allow_floating_inputs:
                    problems.append(f"input pin {pin.name} is unconnected")
                continue
            if not net.has_driver and not allow_floating_inputs:
                problems.append(f"net {net.name!r} (load {pin.name}) has no driver")
        for pin in inst.output_pins():
            net = pin.net
            if net is None:
                continue
            if net.driver is not pin:
                problems.append(
                    f"net {net.name!r} driver mismatch for output pin {pin.name}")

    for port in netlist.output_ports():
        net = netlist.net(port)
        if not net.has_driver:
            problems.append(f"output port {port!r} has no driver")

    if not allow_dangling_outputs:
        for inst in netlist.instances.values():
            for pin in inst.output_pins():
                if pin.net is None or (not pin.net.loads
                                       and not pin.net.is_output_port):
                    problems.append(f"output pin {pin.name} drives nothing")

    try:
        topological_instances(netlist)
    except Exception as exc:  # CombinationalLoopError
        problems.append(str(exc))

    return problems


def validate_netlist(netlist: Netlist, allow_floating_inputs: bool = False) -> None:
    """Raise :class:`NetlistValidationError` if the netlist is malformed."""
    problems = check_netlist(netlist, allow_floating_inputs=allow_floating_inputs)
    if problems:
        raise NetlistValidationError(problems)
