"""The compiled netlist IR: one levelized integer-ID core for every engine.

Every analysis in this package — three-valued simulation, bit-parallel
pattern simulation, serial fault simulation, ATPG implication, PODEM and the
tie analysis — operates on the *combinational view* of a netlist.  Before
this module existed each of them re-walked the :class:`~repro.netlist.module.
Netlist` object graph through string-keyed dicts and rebuilt its own
topological order.  :class:`CompiledNetlist` performs that flattening once:

* net names are interned to dense integer IDs (``net_id`` / ``net_names``);
* combinational gates become level-ordered *op* arrays with precomputed
  fanin/fanout net-ID tuples (``op_fanin`` / ``op_fanout`` / ``op_level``);
* sequential cells get the same treatment (``seq_fanin`` / ``seq_fanout``);
* per-net connectivity (driver op, load pins, successor nets) and transitive
  fanout cones are ID-indexed tables, the cones memoised on first use;
* ties and port roles are ID-indexed arrays.

Engines index plain Python lists by integer instead of hashing strings, and
— because compiled netlists are cached — they share one build per netlist
signature across a whole :class:`repro.api.Session` sweep.

Caching
-------
:func:`get_compiled` is the entry point.  It keeps two layers:

* a per-object slot on the :class:`Netlist` itself, revalidated with a cheap
  fingerprint (mutation counter + tie table + unobservable ports), so the
  common case — many engines over one unchanged netlist — is a dict-free hit;
* a global, signature-keyed LRU so *structurally identical* netlists (e.g.
  the per-scenario rebuilds of a :class:`~repro.api.ScenarioGrid` sweep)
  share a single build.

:func:`compile_stats` exposes build/hit counters so tests can assert the
"compile at most once per netlist signature" contract.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.netlist.cells import Cell
from repro.netlist.module import Instance, Netlist
from repro.netlist.traversal import topological_instances

#: Net-ID placeholder for an unconnected pin.
NO_NET = -1


def netlist_signature(netlist: Netlist) -> str:
    """A stable digest of the netlist structure.

    Covers the name, ports, unobservable ports, every instance with its
    cell and pin connectivity, and every tied net — i.e. everything the
    analyses read.  Two structurally identical clones hash the same.
    """
    hasher = hashlib.sha256()

    def feed(text: str) -> None:
        hasher.update(text.encode())
        hasher.update(b"\x00")

    feed(netlist.name)
    for port, direction in sorted(netlist.ports.items()):
        feed(f"P{port}:{direction}")
    for port in sorted(netlist.unobservable_ports):
        feed(f"U{port}")
    for inst_name in sorted(netlist.instances):
        inst = netlist.instances[inst_name]
        feed(f"I{inst_name}:{inst.cell.name}")
        for port in sorted(inst.pins):
            pin = inst.pins[port]
            feed(f"p{port}={pin.net.name if pin.net is not None else ''}")
    for net_name in sorted(netlist.nets):
        tied = netlist.nets[net_name].tied
        if tied is not None:
            feed(f"T{net_name}={tied}")
    return hasher.hexdigest()


class CompiledNetlist:
    """Immutable, integer-ID snapshot of a netlist's combinational view.

    Built by :func:`compile_netlist` / :func:`get_compiled`; engines treat
    every table as read-only.  ``instances`` / ``seq_instances`` hold
    references into the *origin* netlist object graph — they are only used
    for name/cell/pin-role metadata, which is identical across
    signature-equal netlists, so a compiled netlist may safely serve a
    structural clone of its origin.
    """

    __slots__ = (
        "netlist", "signature_hint",
        # nets
        "n_nets", "net_names", "net_id", "tied",
        "is_input_port", "is_output_port", "is_observable_output",
        "input_port_ids", "output_port_ids", "observable_output_ids",
        # combinational ops (topological / level order)
        "n_ops", "instances", "op_cell", "op_fanin", "op_fanout", "op_level",
        "op_of_instance",
        # sequential cells
        "seq_instances", "seq_cell", "seq_fanin", "seq_fanout",
        "seq_of_instance", "state_net_ids",
        # per-net connectivity
        "net_driver_op", "net_driver_seq", "net_load_ops", "net_load_seqs",
        "net_succ",
        # lazy memos
        "_lock", "_fanout_ops_memo", "_branch_cone_memo",
        "_fanout_nets_memo", "_extensions",
    )

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.signature_hint: Optional[str] = None

        # ---------------- nets ---------------- #
        net_names: List[str] = list(netlist.nets)
        net_id: Dict[str, int] = {name: i for i, name in enumerate(net_names)}
        n = len(net_names)
        self.n_nets = n
        self.net_names = net_names
        self.net_id = net_id
        self.tied: List[Optional[int]] = [None] * n
        self.is_input_port = [False] * n
        self.is_output_port = [False] * n
        self.is_observable_output = [False] * n
        for name, net in netlist.nets.items():
            nid = net_id[name]
            self.tied[nid] = net.tied
            self.is_input_port[nid] = net.is_input_port
            self.is_output_port[nid] = net.is_output_port
        self.input_port_ids = [net_id[p] for p in netlist.input_ports()
                               if p in net_id]
        self.output_port_ids = [net_id[p] for p in netlist.output_ports()
                                if p in net_id]
        self.observable_output_ids = [
            net_id[p] for p in netlist.observable_output_ports()
            if p in net_id]
        for nid in self.observable_output_ids:
            self.is_observable_output[nid] = True

        # ------------- combinational ops ------------- #
        order = topological_instances(netlist)  # raises on loops
        self.n_ops = len(order)
        self.instances: List[Instance] = order
        self.op_cell: List[Cell] = [inst.cell for inst in order]
        self.op_of_instance: Dict[str, int] = {
            inst.name: i for i, inst in enumerate(order)}

        def pin_ids(inst: Instance, ports: Tuple[str, ...]) -> Tuple[int, ...]:
            ids = []
            for port in ports:
                pin_net = inst.pins[port].net
                ids.append(net_id[pin_net.name] if pin_net is not None else NO_NET)
            return tuple(ids)

        self.op_fanin = [pin_ids(inst, inst.cell.inputs) for inst in order]
        self.op_fanout = [pin_ids(inst, inst.cell.outputs) for inst in order]

        # ------------- sequential cells ------------- #
        seq = [inst for inst in netlist.instances.values() if inst.is_sequential]
        self.seq_instances = seq
        self.seq_cell = [inst.cell for inst in seq]
        self.seq_of_instance = {inst.name: i for i, inst in enumerate(seq)}
        self.seq_fanin = [pin_ids(inst, inst.cell.inputs) for inst in seq]
        self.seq_fanout = [pin_ids(inst, inst.cell.outputs) for inst in seq]
        # Output nets of sequential cells, in instance/pin order (the
        # pseudo-primary inputs of the combinational view).  Deliberately
        # *not* deduplicated — mirrors the legacy simulator's state_nets.
        self.state_net_ids: List[int] = [
            nid for fanout in self.seq_fanout for nid in fanout if nid >= 0]

        # ------------- per-net connectivity ------------- #
        driver_op = [NO_NET] * n
        driver_seq = [NO_NET] * n
        load_ops: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        load_seqs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for i, fanout in enumerate(self.op_fanout):
            for nid in fanout:
                if nid >= 0:
                    driver_op[nid] = i
        for i, fanout in enumerate(self.seq_fanout):
            for nid in fanout:
                if nid >= 0:
                    driver_seq[nid] = i
        for i, fanin in enumerate(self.op_fanin):
            for pos, nid in enumerate(fanin):
                if nid >= 0:
                    load_ops[nid].append((i, pos))
        for i, fanin in enumerate(self.seq_fanin):
            for pos, nid in enumerate(fanin):
                if nid >= 0:
                    load_seqs[nid].append((i, pos))
        self.net_driver_op = driver_op
        self.net_driver_seq = driver_seq
        self.net_load_ops = [tuple(loads) for loads in load_ops]
        self.net_load_seqs = [tuple(loads) for loads in load_seqs]

        # Successor nets: output nets of every loading instance (comb and
        # sequential alike) — the step relation of X-path / reachability
        # searches, matching the legacy ``net.loads`` traversals.
        succ: List[Tuple[int, ...]] = []
        for nid in range(n):
            nxt: List[int] = []
            for op, _pos in self.net_load_ops[nid]:
                nxt.extend(out for out in self.op_fanout[op] if out >= 0)
            for sq, _pos in self.net_load_seqs[nid]:
                nxt.extend(out for out in self.seq_fanout[sq] if out >= 0)
            succ.append(tuple(nxt))
        self.net_succ = succ

        # ------------- logic levels ------------- #
        levels = [0] * self.n_ops
        for i, fanin in enumerate(self.op_fanin):
            level = 0
            for nid in fanin:
                if nid >= 0:
                    drv = driver_op[nid]
                    if drv >= 0:
                        level = max(level, levels[drv] + 1)
            levels[i] = level
        self.op_level = levels

        # ------------- lazy memos ------------- #
        # Re-entrant: an extension factory may itself request other
        # extensions (the static-analysis handle builds on the evaluator
        # programs, which live in extension slots too).
        self._lock = threading.RLock()
        self._fanout_ops_memo: Dict[int, Tuple[int, ...]] = {}
        self._branch_cone_memo: Dict[int, Tuple[int, ...]] = {}
        self._fanout_nets_memo: Dict[int, frozenset] = {}
        self._extensions: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def id_of(self, net_name: str) -> Optional[int]:
        """Net ID for a name, or None when the net does not exist."""
        return self.net_id.get(net_name)

    def pin_ref(self, pin_name: str) -> Tuple[str, int, int, bool]:
        """Resolve ``"instance/port"`` to ``(kind, index, pin_pos, is_input)``.

        ``kind`` is ``"op"`` (combinational) or ``"seq"``; ``index`` indexes
        the matching table; ``pin_pos`` is the position within the cell's
        input or output tuple.  Raises like
        :meth:`~repro.netlist.module.Netlist.pin_by_name` on bad names.
        """
        inst_name, _, port = pin_name.rpartition("/")
        if not inst_name:
            raise ValueError(f"{pin_name!r} is not an instance pin name")
        op = self.op_of_instance.get(inst_name)
        if op is not None:
            cell = self.op_cell[op]
            kind, index = "op", op
        else:
            sq = self.seq_of_instance.get(inst_name)
            if sq is None:
                raise KeyError(f"instance {inst_name!r} not found")
            cell = self.seq_cell[sq]
            kind, index = "seq", sq
        if port in cell.inputs:
            return kind, index, cell.inputs.index(port), True
        if port in cell.outputs:
            return kind, index, cell.outputs.index(port), False
        raise KeyError(f"cell {cell.name!r} has no pin {port!r} "
                       f"(instance {inst_name!r})")

    def pin_net_id(self, kind: str, index: int, pos: int,
                   is_input: bool) -> int:
        table = ((self.op_fanin if is_input else self.op_fanout)
                 if kind == "op"
                 else (self.seq_fanin if is_input else self.seq_fanout))
        return table[index][pos]

    # ------------------------------------------------------------------ #
    # memoised cones
    # ------------------------------------------------------------------ #
    def fanout_ops(self, nid: int) -> Tuple[int, ...]:
        """Combinational ops transitively downstream of a net, in
        topological (ascending index) order.  Stops at sequential cells."""
        memo = self._fanout_ops_memo
        cached = memo.get(nid)
        if cached is not None:
            return cached
        seen_ops = set()
        seen_nets = set()
        work = [nid]
        while work:
            net = work.pop()
            if net in seen_nets:
                continue
            seen_nets.add(net)
            for op, _pos in self.net_load_ops[net]:
                if op in seen_ops:
                    continue
                seen_ops.add(op)
                work.extend(out for out in self.op_fanout[op] if out >= 0)
        cone = tuple(sorted(seen_ops))
        with self._lock:
            memo[nid] = cone
        return cone

    def branch_cone(self, op: int) -> Tuple[int, ...]:
        """Cone for a fault on an input pin of op: the op itself plus the
        transitive fanout of its output nets, topologically ordered."""
        memo = self._branch_cone_memo
        cached = memo.get(op)
        if cached is not None:
            return cached
        ops = {op}
        for out in self.op_fanout[op]:
            if out >= 0:
                ops.update(self.fanout_ops(out))
        cone = tuple(sorted(ops))
        with self._lock:
            memo[op] = cone
        return cone

    def fanout_nets(self, nid: int) -> frozenset:
        """Nets the fault effect can reach within one time frame: the origin
        plus everything downstream through combinational logic."""
        memo = self._fanout_nets_memo
        cached = memo.get(nid)
        if cached is not None:
            return cached
        cone = set()
        work = [nid]
        while work:
            net = work.pop()
            if net in cone:
                continue
            cone.add(net)
            for op, _pos in self.net_load_ops[net]:
                work.extend(out for out in self.op_fanout[op] if out >= 0)
        result = frozenset(cone)
        with self._lock:
            memo[nid] = result
        return result

    def fanout_cone_sizes(self) -> List[int]:
        """Per-net transitive fanout cone size (combinational op count).

        Equal to ``len(self.fanout_ops(nid))`` for every net, but computed
        for *all* nets in one reverse-topological bitset pass instead of
        one BFS per net — the cone-aware fault partitioner
        (:mod:`repro.simulation.sharded`) uses it to balance shards without
        paying a per-net cone walk.  Memoised per compiled netlist.
        """
        def build(compiled: "CompiledNetlist") -> List[int]:
            n_ops = compiled.n_ops
            net_load_ops = compiled.net_load_ops
            op_fanout = compiled.op_fanout
            # reach[op] = bitset of ops transitively downstream of op
            # (op included).  Ops are stored in topological order, so one
            # descending pass sees every successor before its producers.
            reach = [0] * n_ops
            for op in range(n_ops - 1, -1, -1):
                acc = 1 << op
                for out in op_fanout[op]:
                    if out >= 0:
                        for lop, _pos in net_load_ops[out]:
                            acc |= reach[lop]
                reach[op] = acc
            sizes = [0] * compiled.n_nets
            for nid in range(compiled.n_nets):
                acc = 0
                for lop, _pos in net_load_ops[nid]:
                    acc |= reach[lop]
                sizes[nid] = acc.bit_count()
            return sizes

        return self.extension("fanout_cone_sizes", build)

    # ------------------------------------------------------------------ #
    # shared derived data
    # ------------------------------------------------------------------ #
    def extension(self, key: str, factory: Callable[["CompiledNetlist"], object]):
        """Memoise engine-specific derived tables on the compiled netlist.

        The simulation layer uses this to build (once per compiled netlist,
        not per simulator) its per-op evaluator arrays — e.g. the word-level
        and bit-plane programs.
        """
        ext = self._extensions.get(key)
        if ext is None:
            with self._lock:
                ext = self._extensions.get(key)
                if ext is None:
                    ext = factory(self)
                    self._extensions[key] = ext
        return ext

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"CompiledNetlist({self.netlist.name!r}, nets={self.n_nets}, "
                f"ops={self.n_ops}, seq={len(self.seq_instances)})")


# --------------------------------------------------------------------- #
# compile cache
# --------------------------------------------------------------------- #
_CACHE_LOCK = threading.Lock()
_SIG_CACHE: "OrderedDict[str, CompiledNetlist]" = OrderedDict()
_SIG_CACHE_MAX = 32
_STATS = {"builds": 0, "object_hits": 0, "signature_hits": 0}

#: Attribute used for the per-object cache slot on Netlist instances.
_SLOT = "_compiled_cache"


def _fingerprint(netlist: Netlist) -> Tuple:
    """Cheap revalidation key for the per-object cache slot.

    The mutation counter covers structural edits made through the Netlist
    API; ties and unobservable ports are mutated directly on the graph, so
    they are fingerprinted by value.
    """
    ties = tuple(sorted(
        (name, net.tied) for name, net in netlist.nets.items()
        if net.tied is not None))
    return (getattr(netlist, "_mutations", 0), ties,
            frozenset(netlist.unobservable_ports))


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Unconditionally build a fresh :class:`CompiledNetlist` (no caching)."""
    return CompiledNetlist(netlist)


def get_compiled(netlist: Netlist) -> CompiledNetlist:
    """The shared compiled form of ``netlist`` (cached, revalidated).

    Per-object hits cost one fingerprint comparison; structurally identical
    netlist objects (equal :func:`netlist_signature`) share one build via a
    global LRU, which is what keeps a whole :class:`repro.api.Session`
    sweep at a single compile per netlist signature.
    """
    key = _fingerprint(netlist)
    slot = getattr(netlist, _SLOT, None)
    if slot is not None and slot[0] == key:
        with _CACHE_LOCK:
            _STATS["object_hits"] += 1
        return slot[1]

    signature = netlist_signature(netlist)
    with _CACHE_LOCK:
        compiled = _SIG_CACHE.get(signature)
        if compiled is not None:
            _SIG_CACHE.move_to_end(signature)
            _STATS["signature_hits"] += 1
    if compiled is None:
        compiled = CompiledNetlist(netlist)
        compiled.signature_hint = signature
        with _CACHE_LOCK:
            _STATS["builds"] += 1
            _SIG_CACHE[signature] = compiled
            _SIG_CACHE.move_to_end(signature)
            while len(_SIG_CACHE) > _SIG_CACHE_MAX:
                _SIG_CACHE.popitem(last=False)
    try:
        setattr(netlist, _SLOT, (key, compiled))
    except AttributeError:  # pragma: no cover - slotted subclasses
        pass
    return compiled


def compile_stats() -> Dict[str, object]:
    """Build/hit counters of the compile cache (for tests and reports).

    Besides the counters, the record names the active simulation kernel
    (and the numpy version when that backend is live) so numbers derived
    from it are attributable to a backend.
    """
    # Imported here: repro.simulation.kernels imports this module.
    from repro.simulation.kernels import kernel_info

    with _CACHE_LOCK:
        stats: Dict[str, object] = dict(_STATS)
        stats["cached_signatures"] = len(_SIG_CACHE)
    stats.update(kernel_info())
    return stats


def reset_compile_stats(clear_cache: bool = False) -> None:
    """Zero the counters (and optionally drop the signature cache)."""
    with _CACHE_LOCK:
        for key in _STATS:
            _STATS[key] = 0
        if clear_cache:
            _SIG_CACHE.clear()
