"""Netlist traversal: levelisation, cones, pseudo-primary I/O.

All structural analyses (ATPG, fault simulation, observability reachability)
work on the *combinational view* of the netlist: sequential cell outputs act
as pseudo-primary inputs (they are controllable via scan during manufacturing
test, or simply hold state), and sequential cell inputs act as pseudo-primary
outputs.  The helpers here compute that view.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set, Union

from repro.netlist.module import Instance, Net, Netlist, Pin


class CombinationalLoopError(Exception):
    """Raised when the combinational portion of a netlist contains a cycle."""


def pseudo_primary_inputs(netlist: Netlist) -> List[Net]:
    """Nets acting as controllable sources in the combinational view.

    These are the module input ports plus the outputs of sequential cells.
    Tied nets are *not* excluded here — the untestability analysis decides
    what a tie means for controllability.
    """
    sources: List[Net] = []
    seen: Set[str] = set()
    for port in netlist.input_ports():
        net = netlist.net(port)
        if net.name not in seen:
            sources.append(net)
            seen.add(net.name)
    for inst in netlist.sequential_instances():
        for pin in inst.output_pins():
            if pin.net is not None and pin.net.name not in seen:
                sources.append(pin.net)
                seen.add(pin.net.name)
    return sources


def pseudo_primary_outputs(netlist: Netlist,
                           include_unobservable: bool = False) -> List[Union[str, Pin]]:
    """Observation points in the combinational view.

    Returns a mixed list of output-port names and sequential-cell input
    :class:`Pin` objects.  Ports listed in ``netlist.unobservable_ports`` are
    skipped unless ``include_unobservable`` is set.
    """
    points: List[Union[str, Pin]] = []
    for port in netlist.output_ports():
        if include_unobservable or port not in netlist.unobservable_ports:
            points.append(port)
    for inst in netlist.sequential_instances():
        for pin in inst.input_pins():
            points.append(pin)
    return points


def topological_instances(netlist: Netlist) -> List[Instance]:
    """Topological order of the *combinational* instances.

    Sequential instances are treated as graph sources/sinks: their outputs
    feed the combinational network but they impose no ordering constraint
    themselves.  Raises :class:`CombinationalLoopError` on a combinational
    cycle.
    """
    comb = netlist.combinational_instances()
    in_degree: Dict[str, int] = {}
    dependents: Dict[str, List[Instance]] = {}

    for inst in comb:
        count = 0
        for pin in inst.input_pins():
            net = pin.net
            if net is None or net.is_input_port:
                continue
            driver = net.driver
            if driver is not None and not driver.instance.is_sequential:
                count += 1
                dependents.setdefault(driver.instance.name, []).append(inst)
        in_degree[inst.name] = count

    ready = deque(inst for inst in comb if in_degree[inst.name] == 0)
    order: List[Instance] = []
    while ready:
        inst = ready.popleft()
        order.append(inst)
        for dep in dependents.get(inst.name, ()):
            in_degree[dep.name] -= 1
            if in_degree[dep.name] == 0:
                ready.append(dep)

    if len(order) != len(comb):
        unresolved = [n for n, d in in_degree.items() if d > 0]
        raise CombinationalLoopError(
            f"combinational loop involving {len(unresolved)} instance(s), "
            f"e.g. {unresolved[:5]}"
        )
    return order


def combinational_levels(netlist: Netlist) -> Dict[str, int]:
    """Logic level (longest path from a pseudo-PI) of each combinational instance."""
    levels: Dict[str, int] = {}
    for inst in topological_instances(netlist):
        level = 0
        for pin in inst.input_pins():
            net = pin.net
            if net is None or net.driver is None:
                continue
            driver_inst = net.driver.instance
            if not driver_inst.is_sequential:
                level = max(level, levels.get(driver_inst.name, 0) + 1)
        levels[inst.name] = level
    return levels


def _net_of(netlist: Netlist, net_or_name: Union[Net, str]) -> Net:
    return net_or_name if isinstance(net_or_name, Net) else netlist.net(net_or_name)


def fanin_cone(netlist: Netlist, net_or_name: Union[Net, str],
               through_sequential: bool = False) -> Set[str]:
    """Instance names in the transitive fan-in of a net.

    By default the cone stops at sequential cells (their instance is included
    but not traversed); with ``through_sequential`` the traversal continues
    through flip-flop data inputs.
    """
    start = _net_of(netlist, net_or_name)
    visited_nets: Set[str] = set()
    cone: Set[str] = set()
    work = deque([start])
    while work:
        net = work.popleft()
        if net.name in visited_nets:
            continue
        visited_nets.add(net.name)
        driver = net.driver
        if driver is None:
            continue
        inst = driver.instance
        cone.add(inst.name)
        if inst.is_sequential and not through_sequential:
            continue
        for pin in inst.input_pins():
            if pin.net is not None:
                work.append(pin.net)
    return cone


def fanout_cone(netlist: Netlist, net_or_name: Union[Net, str],
                through_sequential: bool = False) -> Set[str]:
    """Instance names in the transitive fan-out of a net.

    Stops at sequential cells unless ``through_sequential`` is set, in which
    case the traversal continues from the flip-flop's outputs (multi-cycle
    reachability, used by the observability analysis).
    """
    start = _net_of(netlist, net_or_name)
    visited_nets: Set[str] = set()
    cone: Set[str] = set()
    work = deque([start])
    while work:
        net = work.popleft()
        if net.name in visited_nets:
            continue
        visited_nets.add(net.name)
        for pin in net.loads:
            inst = pin.instance
            cone.add(inst.name)
            if inst.is_sequential and not through_sequential:
                continue
            for out_pin in inst.output_pins():
                if out_pin.net is not None:
                    work.append(out_pin.net)
    return cone


def sequential_fanout_cone(netlist: Netlist, net_or_name: Union[Net, str]) -> Set[str]:
    """Fan-out cone traversing through flip-flops (multi-cycle reachability)."""
    return fanout_cone(netlist, net_or_name, through_sequential=True)


def reachable_output_ports(netlist: Netlist, net_or_name: Union[Net, str],
                           through_sequential: bool = True) -> Set[str]:
    """Module output ports reachable (structurally) from a net.

    Used by the debug-observation analysis: a fault whose effects can only
    reach unobservable (floating) outputs is on-line functionally untestable.
    """
    start = _net_of(netlist, net_or_name)
    visited: Set[str] = set()
    reached: Set[str] = set()
    work = deque([start])
    while work:
        net = work.popleft()
        if net.name in visited:
            continue
        visited.add(net.name)
        if net.is_output_port:
            reached.add(net.name)
        for pin in net.loads:
            inst = pin.instance
            if inst.is_sequential and not through_sequential:
                continue
            for out_pin in inst.output_pins():
                if out_pin.net is not None:
                    work.append(out_pin.net)
    return reached


def driven_nets(instances: Iterable[Instance]) -> Set[str]:
    """Names of all nets driven by the given instances."""
    result: Set[str] = set()
    for inst in instances:
        for pin in inst.output_pins():
            if pin.net is not None:
                result.add(pin.net.name)
    return result
