"""The netlist graph: pins, nets, instances and the :class:`Netlist` container.

The model deliberately mirrors the flat gate-level view an ATPG tool sees:

* a *net* has exactly one driver (an instance output pin or a module input
  port) and any number of loads (instance input pins and module output
  ports);
* a *pin* belongs to an instance and connects to exactly one net;
* module ports are named entries in :attr:`Netlist.ports`; by convention the
  net carrying a port has the same name as the port.

Two pieces of mutable analysis state live directly on the graph because the
paper's methodology is defined in terms of them:

* :attr:`Net.tied` — the net has been connected to ground/Vdd ("tied'0 /
  tied'1") by the circuit-manipulation step (§3.2.1 / §3.3);
* :attr:`Netlist.unobservable_ports` — output ports left floating because the
  external debugger is disconnected (§3.2.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.netlist.cells import Cell, Library, standard_library

INPUT = "input"
OUTPUT = "output"


class Pin:
    """A connection point of an :class:`Instance`."""

    __slots__ = ("instance", "port", "direction", "net")

    def __init__(self, instance: "Instance", port: str, direction: str) -> None:
        self.instance = instance
        self.port = port
        self.direction = direction
        self.net: Optional[Net] = None

    @property
    def name(self) -> str:
        """Hierarchical pin name ``instance/port`` — the fault-site identifier."""
        return f"{self.instance.name}/{self.port}"

    @property
    def is_input(self) -> bool:
        return self.direction == INPUT

    @property
    def is_output(self) -> bool:
        return self.direction == OUTPUT

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        net = self.net.name if self.net is not None else "<unconnected>"
        return f"Pin({self.name}, {self.direction}, net={net})"


class Net:
    """A wire connecting one driver to zero or more loads."""

    __slots__ = ("name", "driver", "loads", "is_input_port", "is_output_port",
                 "tied")

    def __init__(self, name: str) -> None:
        self.name = name
        self.driver: Optional[Pin] = None
        self.loads: List[Pin] = []
        self.is_input_port = False
        self.is_output_port = False
        # None: not tied; LOGIC_0 / LOGIC_1: forced to a constant by the
        # circuit-manipulation step.
        self.tied: Optional[int] = None

    @property
    def has_driver(self) -> bool:
        return self.driver is not None or self.is_input_port or self.tied is not None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        driver = (self.driver.name if self.driver
                  else ("PI" if self.is_input_port else "-"))
        return (f"Net({self.name}, driver={driver}, "
                f"loads={len(self.loads)}, tied={self.tied})")


class Instance:
    """An instantiated library cell."""

    __slots__ = ("name", "cell", "pins")

    def __init__(self, name: str, cell: Cell) -> None:
        self.name = name
        self.cell = cell
        self.pins: Dict[str, Pin] = {}
        for port in cell.inputs:
            self.pins[port] = Pin(self, port, INPUT)
        for port in cell.outputs:
            self.pins[port] = Pin(self, port, OUTPUT)

    @property
    def is_sequential(self) -> bool:
        return self.cell.sequential

    def pin(self, port: str) -> Pin:
        try:
            return self.pins[port]
        except KeyError:
            raise KeyError(
                f"cell {self.cell.name!r} has no pin {port!r} "
                f"(instance {self.name!r})"
            ) from None

    def input_pins(self) -> List[Pin]:
        return [self.pins[p] for p in self.cell.inputs]

    def output_pins(self) -> List[Pin]:
        return [self.pins[p] for p in self.cell.outputs]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Instance({self.name}, {self.cell.name})"


class Netlist:
    """A flat gate-level module."""

    def __init__(self, name: str, library: Optional[Library] = None) -> None:
        self.name = name
        self.library = library if library is not None else standard_library()
        self.ports: Dict[str, str] = {}
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}
        # Output ports declared unobservable by the debug-observation
        # manipulation (§3.2.2): the logic driving them is left floating.
        self.unobservable_ports: Set[str] = set()
        # Free-form annotations attached by generators and analyses, e.g.
        # the list of debug-related input ports or the scan chain order.
        self.annotations: Dict[str, object] = {}
        # Bumped on every structural mutation; the compiled-netlist cache
        # (:mod:`repro.netlist.compiled`) uses it to revalidate cheaply.
        # Tie values and unobservable ports are mutated directly on the
        # graph, so the cache fingerprints those separately.
        self._mutations = 0

    # ------------------------------------------------------------------ #
    # construction primitives
    # ------------------------------------------------------------------ #
    def add_port(self, name: str, direction: str) -> Net:
        """Declare a module port and return its net (created if needed)."""
        if direction not in (INPUT, OUTPUT):
            raise ValueError(f"invalid port direction {direction!r}")
        if name in self.ports:
            raise ValueError(f"port {name!r} already declared on module {self.name!r}")
        self.ports[name] = direction
        self._mutations += 1
        net = self.get_or_create_net(name)
        if direction == INPUT:
            net.is_input_port = True
        else:
            net.is_output_port = True
        return net

    def get_or_create_net(self, name: str) -> Net:
        net = self.nets.get(name)
        if net is None:
            net = Net(name)
            self.nets[name] = net
            self._mutations += 1
        return net

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise KeyError(f"net {name!r} not found in module {self.name!r}") from None

    def add_instance(self, name: str, cell_name: str,
                     connections: Dict[str, str]) -> Instance:
        """Instantiate ``cell_name`` as ``name`` connecting pins to net names."""
        if name in self.instances:
            raise ValueError(
                f"instance {name!r} already exists in module {self.name!r}")
        cell = self.library.get(cell_name)
        inst = Instance(name, cell)
        self.instances[name] = inst
        self._mutations += 1
        for port, net_name in connections.items():
            self.connect(inst.pin(port), net_name)
        return inst

    def connect(self, pin: Pin, net_name: str) -> Net:
        """Connect ``pin`` to the net named ``net_name``."""
        net = self.get_or_create_net(net_name)
        if pin.net is not None:
            self.disconnect(pin)
        if pin.is_output:
            if net.driver is not None:
                raise ValueError(
                    f"net {net.name!r} already driven by {net.driver.name}; "
                    f"cannot also connect driver {pin.name}"
                )
            net.driver = pin
        else:
            net.loads.append(pin)
        pin.net = net
        self._mutations += 1
        return net

    def disconnect(self, pin: Pin) -> None:
        """Detach ``pin`` from its net (used by the observation-float step)."""
        net = pin.net
        if net is None:
            return
        if pin.is_output and net.driver is pin:
            net.driver = None
        elif pin in net.loads:
            net.loads.remove(pin)
        pin.net = None
        self._mutations += 1

    def remove_instance(self, name: str) -> None:
        inst = self.instances.pop(name)
        self._mutations += 1
        for pin in inst.pins.values():
            self.disconnect(pin)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def input_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d == INPUT]

    def output_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d == OUTPUT]

    def observable_output_ports(self) -> List[str]:
        return [p for p in self.output_ports() if p not in self.unobservable_ports]

    def sequential_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.is_sequential]

    def combinational_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if not i.is_sequential]

    def all_pins(self) -> Iterator[Pin]:
        for inst in self.instances.values():
            yield from inst.pins.values()

    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise KeyError(
                f"instance {name!r} not found in module {self.name!r}"
            ) from None

    def pin_by_name(self, name: str) -> Pin:
        """Resolve ``"instance/port"`` back to a :class:`Pin`."""
        inst_name, _, port = name.rpartition("/")
        if not inst_name:
            raise ValueError(f"{name!r} is not an instance pin name")
        return self.instance(inst_name).pin(port)

    def stats(self) -> Dict[str, int]:
        """Basic size statistics used in reports."""
        seq = sum(1 for i in self.instances.values() if i.is_sequential)
        pins = sum(len(i.pins) for i in self.instances.values())
        return {
            "instances": len(self.instances),
            "sequential": seq,
            "combinational": len(self.instances) - seq,
            "nets": len(self.nets),
            "ports": len(self.ports),
            "pins": pins,
        }

    def clone(self, name: Optional[str] = None) -> "Netlist":
        """Deep-copy the structural content (used before circuit manipulation)."""
        other = Netlist(name or self.name, self.library)
        for port, direction in self.ports.items():
            other.add_port(port, direction)
        for net_name in self.nets:
            other.get_or_create_net(net_name)
        for inst in self.instances.values():
            connections = {
                port: pin.net.name
                for port, pin in inst.pins.items()
                if pin.net is not None
            }
            other.add_instance(inst.name, inst.cell.name, connections)
        for net_name, net in self.nets.items():
            other.nets[net_name].tied = net.tied
        other.unobservable_ports = set(self.unobservable_ports)
        other.annotations = dict(self.annotations)
        return other

    # ------------------------------------------------------------------ #
    # pickling
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        """Pickle as a flat structural description, rebuilt on load.

        The object graph is deeply cyclic (net → pin → instance → net …),
        so default pickling would recurse past the interpreter limit on
        real-size cores; the flat form also drops the per-object compiled
        cache (which holds a lock).  The rebuild replays the same
        construction path as :meth:`clone`, with the original net creation
        order preserved so compiled net IDs survive the round trip.
        """
        state = {
            "name": self.name,
            "library": self.library,
            "nets": list(self.nets),
            "ports": dict(self.ports),
            "instances": [
                (inst.name, inst.cell.name,
                 {port: pin.net.name for port, pin in inst.pins.items()
                  if pin.net is not None})
                for inst in self.instances.values()
            ],
            "tied": {name: net.tied for name, net in self.nets.items()
                     if net.tied is not None},
            "unobservable_ports": set(self.unobservable_ports),
            "annotations": dict(self.annotations),
        }
        return (_rebuild_netlist, (state,))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats()
        return (f"Netlist({self.name}, instances={s['instances']}, "
                f"nets={s['nets']}, ports={s['ports']})")


def _rebuild_netlist(state: Dict[str, object]) -> "Netlist":
    """Pickle hook: reconstruct a :class:`Netlist` from its flat state."""
    netlist = Netlist(state["name"], state["library"])
    for net_name in state["nets"]:
        netlist.get_or_create_net(net_name)
    for port, direction in state["ports"].items():
        netlist.add_port(port, direction)
    for inst_name, cell_name, connections in state["instances"]:
        netlist.add_instance(inst_name, cell_name, connections)
    for net_name, tied in state["tied"].items():
        netlist.nets[net_name].tied = tied
    netlist.unobservable_ports = set(state["unobservable_ports"])
    netlist.annotations = dict(state["annotations"])
    return netlist


def merge_netlists(name: str, parts: Iterable[Tuple[str, Netlist]],
                   library: Optional[Library] = None) -> Netlist:
    """Flatten several sub-netlists into one, prefixing names with the part label.

    The SoC builder composes the CPU, debug unit and glue logic with this
    helper.  Ports of the parts become internal nets unless re-exported by
    the caller.
    """
    merged = Netlist(name, library)
    for prefix, part in parts:
        for net_name in part.nets:
            merged.get_or_create_net(f"{prefix}.{net_name}")
        for inst in part.instances.values():
            connections = {
                port: f"{prefix}.{pin.net.name}"
                for port, pin in inst.pins.items()
                if pin.net is not None
            }
            merged.add_instance(f"{prefix}.{inst.name}", inst.cell.name, connections)
        for net_name, net in part.nets.items():
            merged.nets[f"{prefix}.{net_name}"].tied = net.tied
    return merged
