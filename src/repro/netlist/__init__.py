"""Gate-level netlist substrate.

This package provides the structural representation every other subsystem is
built on: a technology-independent standard-cell library with three-valued
semantics (:mod:`repro.netlist.cells`), the netlist graph itself
(:mod:`repro.netlist.module`), a convenience builder used by the SoC
generators (:mod:`repro.netlist.builder`), traversal / levelisation helpers
(:mod:`repro.netlist.traversal`), the compiled integer-ID execution IR every
engine runs on (:mod:`repro.netlist.compiled`) and a structural-Verilog
reader/writer (:mod:`repro.netlist.verilog`).
"""

from repro.netlist.cells import (
    Cell,
    Library,
    LOGIC_0,
    LOGIC_1,
    LOGIC_X,
    standard_library,
)
from repro.netlist.module import Instance, Net, Netlist, Pin
from repro.netlist.builder import NetlistBuilder
from repro.netlist.compiled import (
    CompiledNetlist,
    compile_netlist,
    compile_stats,
    get_compiled,
    netlist_signature,
    reset_compile_stats,
)
from repro.netlist.traversal import (
    combinational_levels,
    fanin_cone,
    fanout_cone,
    pseudo_primary_inputs,
    pseudo_primary_outputs,
    sequential_fanout_cone,
    topological_instances,
)
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.netlist.validate import NetlistValidationError, validate_netlist

__all__ = [
    "Cell",
    "Library",
    "LOGIC_0",
    "LOGIC_1",
    "LOGIC_X",
    "standard_library",
    "Instance",
    "Net",
    "Netlist",
    "Pin",
    "NetlistBuilder",
    "CompiledNetlist",
    "compile_netlist",
    "compile_stats",
    "get_compiled",
    "netlist_signature",
    "reset_compile_stats",
    "combinational_levels",
    "fanin_cone",
    "fanout_cone",
    "pseudo_primary_inputs",
    "pseudo_primary_outputs",
    "sequential_fanout_cone",
    "topological_instances",
    "parse_verilog",
    "write_verilog",
    "NetlistValidationError",
    "validate_netlist",
]
