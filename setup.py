"""Setup shim.

The project is fully described by ``pyproject.toml`` (PEP 621); this file
exists so that editable installs keep working in offline environments where
the ``wheel`` package is unavailable (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
