#!/usr/bin/env python
"""AST lint: no unordered iteration in the rendering / collapse modules.

The repository's reports, fault-universe summaries and collapse classes are
pinned byte-for-byte by the golden corpus, so any iteration whose order
depends on hash randomization is a latent flaky diff.  This lint walks the
modules that produce user-visible or golden-pinned output and flags

* ``for``-loops and comprehensions iterating a set-valued expression
  (set/frozenset displays and constructors, set comprehensions, set algebra
  on set-valued operands, names bound to any of those in the same scope,
  and the set-typed report attributes listed below), and
* ``str.join`` called on such an expression,

unless the expression is wrapped in ``sorted(...)``.  Dict *displays* are
insertion-ordered and therefore fine; ``set`` is the only builtin whose
iteration order varies run to run.

Usage::

    python tools/lint_determinism.py            # lint the default modules
    python tools/lint_determinism.py FILE...    # lint specific files

Exit status 1 when any finding is reported (CI fails the lint job).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The modules whose output is golden-pinned or user-visible.
DEFAULT_TARGETS = (
    "src/repro/core/report.py",
    "src/repro/core/results.py",
    "src/repro/core/classification.py",
    "src/repro/faults/collapse.py",
    "src/repro/atpg/portfolio.py",
)

#: Attributes documented as ``Set[Fault]`` on the report / universe objects
#: (repro.core.results, repro.core.classification, the per-source results).
SET_ATTRIBUTES = frozenset({
    "baseline_untestable",
    "untestable",
    "newly_untestable",
    "identified",
    "attributed",
    "online_untestable",
    "online_functionally_untestable",
    "online_detectable",
    "functionally_untestable",
    "structurally_untestable",
    "all_faults",
    "fault_set",
    "controllable_ids",
    "observation_ids",
})

#: Wrappers that preserve (or define) their argument's iteration order —
#: looking through them keeps ``for i, f in enumerate(sorted(s))`` clean
#: while still flagging ``for f in list(s)``.
ORDER_PRESERVING_WRAPPERS = ("list", "tuple", "enumerate", "reversed", "iter")

SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Builtins whose result does not depend on the iteration order of their
#: argument — a comprehension feeding one of these is deterministic even
#: when it walks a set.
ORDER_INSENSITIVE_CONSUMERS = ("sorted", "set", "frozenset", "sum", "min",
                               "max", "any", "all", "len")


class _Finding(Tuple[str, int, str]):
    __slots__ = ()


def _unwrap(node: ast.expr) -> ast.expr:
    while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
           and node.func.id in ORDER_PRESERVING_WRAPPERS and node.args):
        node = node.args[0]
    return node


class _ScopeChecker(ast.NodeVisitor):
    """Per-module walker tracking which local names hold sets."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Tuple[str, int, str]] = []
        # Stack of per-scope name sets; module scope at the bottom.
        self._set_names: List[Set[str]] = [set()]
        # Comprehensions consumed by an order-insensitive builtin
        # (``sorted(str(f) for f in some_set)``) — exempt by node identity.
        self._exempt: Set[int] = set()

    # -------------------------------------------------------------- #
    # set-ness of an expression
    # -------------------------------------------------------------- #
    def _is_set_expr(self, node: ast.expr) -> bool:
        node = _unwrap(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                    "set", "frozenset"):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("union", "intersection",
                                           "difference",
                                           "symmetric_difference")
                    and self._is_set_expr(node.func.value)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        if isinstance(node, ast.Attribute):
            return node.attr in SET_ATTRIBUTES
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        if isinstance(node, ast.IfExp):
            return (self._is_set_expr(node.body)
                    or self._is_set_expr(node.orelse))
        return False

    def _is_sorted_call(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted")

    def _check_iter(self, node: ast.expr, context: str) -> None:
        unwrapped = _unwrap(node)
        if self._is_sorted_call(unwrapped):
            return
        if self._is_set_expr(unwrapped):
            self.findings.append((
                self.path, node.lineno,
                f"{context} iterates a set-valued expression without "
                f"sorted() — order depends on hash randomization"))

    # -------------------------------------------------------------- #
    # scope handling + assignments
    # -------------------------------------------------------------- #
    def _visit_scope(self, node: ast.AST) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._is_set_expr(node.value):
            if isinstance(node.target, ast.Name):
                self._set_names[-1].add(node.target.id)
        self.generic_visit(node)

    # -------------------------------------------------------------- #
    # iteration sites
    # -------------------------------------------------------------- #
    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, "for-loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST, kind: str) -> None:
        if id(node) not in self._exempt:
            for comp in node.generators:  # type: ignore[attr-defined]
                self._check_iter(comp.iter, kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, "list comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a *set* from a set is order-insensitive.
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, "generator expression")

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in ORDER_INSENSITIVE_CONSUMERS):
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp)):
                    self._exempt.add(id(arg))
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join" and node.args):
            self._check_iter(node.args[0], "str.join")
        self.generic_visit(node)


def lint_file(path: Path) -> List[Tuple[str, int, str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    checker = _ScopeChecker(str(path))
    checker.visit(tree)
    return checker.findings


def main(argv: List[str]) -> int:
    targets = ([Path(arg) for arg in argv]
               if argv else [REPO_ROOT / rel for rel in DEFAULT_TARGETS])
    findings: List[Tuple[str, int, str]] = []
    for target in targets:
        if not target.exists():
            print(f"lint_determinism: missing target {target}",
                  file=sys.stderr)
            return 2
        findings.extend(lint_file(target))
    for path, lineno, message in findings:
        print(f"{path}:{lineno}: {message}")
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_determinism: {len(targets)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
